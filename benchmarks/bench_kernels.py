"""Per-stage speedup of the compiled hot-path kernels — the kernel gate.

The kernel rework (``src/repro/core/kernels/``) replaced two Python-level
hot loops with array-native stages that dispatch to numba-jitted kernels
when numba is installed and to a vectorised numpy fallback otherwise:

* **path extension** — ``PathGenerator.generate_batch`` used to carry its
  frontier as per-vector tuples and materialise children in a Python loop;
  it now runs level-synchronously over flat CSR arrays through the
  ``extend_level`` kernel.
* **build compaction** — ``InvertedFilterIndex.compact`` used to fall back
  to a per-entry Python dict loop over the *whole* posting stream whenever
  any forced 64-bit key collision was present; it now resolves only the
  colliding groups through the ``chain_resolve`` kernel and keeps the rest
  of the stream vectorised.

Each stage is timed against a faithful copy of the replaced implementation
(embedded below, preserved verbatim in structure from the pre-kernel
revision) on an ``n``-vector workload (``REPRO_BENCH_KERNELS_N``, default
20 000) whose posting stream carries 2% forced key collisions.  Results
must be bit-identical and the active backend must win by >= 2x
(``MIN_STAGE_SPEEDUP``); ``benchmarks/check_batch_regression.py`` enforces
the same bound in CI against the exported JSON (``BENCH_kernels.json``).
JIT warm-up is excluded: both stages run once through ``warm_up`` before
the timed region (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import math
import os
import time
from typing import Sequence

import numpy as np

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.inverted_index import InvertedFilterIndex, _segment_gather
from repro.core.kernels import CHAIN_PROBES, KEYS_FOLDED, PATHS_EXTENDED, new_counters
from repro.core.paths import PathGenerationResult, PathGenerator, paths_to_csr
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.thresholds import BoundThreshold
from repro.evaluation.reporting import format_table
from repro.hashing.pairwise import fold_path
from repro.testing import rng_for

from conftest import warm_up

#: Minimum active-backend/reference speedup per kernel stage; keep in sync
#: with benchmarks/check_batch_regression.py (the CI gate).
MIN_STAGE_SPEEDUP = 2.0

#: Vectors are fed to the generators in engine-sized chunks so the timed
#: region exercises the same batch shapes the build and query paths use.
CHUNK = 512

#: Fraction of the compaction stream whose keys are overwritten with a
#: colliding key, forcing the chain-resolution stage to run.
COLLISION_RATE = 0.02


# --------------------------------------------------------------------- #
# Reference implementation 1: the tuple-frontier batch path generator
# (the pre-kernel ``PathGenerator.generate_batch`` and its ``_BatchState``).
# --------------------------------------------------------------------- #


class _ReferenceBatchState:
    """Per-vector bookkeeping of the replaced tuple-frontier generator."""

    __slots__ = (
        "items",
        "log_probs",
        "bound",
        "frontier",
        "finished_paths",
        "finished_keys",
        "truncated",
        "expansions",
        "active",
    )

    def __init__(
        self,
        items: list[int],
        log_probs: list[float],
        bound: BoundThreshold,
        root_key: int,
    ):
        self.items = items
        self.log_probs = log_probs
        self.bound = bound
        self.frontier: list[tuple[tuple[int, ...], int, float, list[int]]] = (
            [((), root_key, 0.0, list(range(len(items))))] if items else []
        )
        self.finished_paths: list[tuple[int, ...]] = []
        self.finished_keys: list[int] = []
        self.truncated = False
        self.expansions = 0
        self.active = bool(items)


def _reference_generate_batch(
    generator: PathGenerator,
    items_per_vector: Sequence[Sequence[int]],
    thresholds: Sequence[BoundThreshold],
) -> list[PathGenerationResult]:
    """The replaced level-synchronous batch generator, tuple frontier and all.

    Reads the modern generator's configuration (hasher, stopping rule,
    caps) so both implementations answer the identical problem; the body is
    the pre-kernel algorithm: per-entry Python collection of candidate
    extensions, one flat hash call per level, then a Python materialisation
    loop replaying the serial order.
    """
    probabilities = generator._probabilities
    hasher = generator._hasher
    max_paths = generator._max_paths
    log_stop = (
        math.log(generator._stop_product) if generator._stop_product is not None else None
    )

    root_key = fold_path(())
    states: list[_ReferenceBatchState] = []
    for members, bound in zip(items_per_vector, thresholds):
        sorted_items = sorted(int(item) for item in members)
        item_array = np.asarray(sorted_items, dtype=np.int64)
        clamped = (
            np.maximum(probabilities[item_array], generator._probability_floor)
            if sorted_items
            else np.empty(0, dtype=np.float64)
        )
        log_probs = [math.log(value) for value in clamped.tolist()]
        states.append(_ReferenceBatchState(sorted_items, log_probs, bound, root_key))

    for level in range(generator._max_depth):
        work: list[tuple[_ReferenceBatchState, list, int]] = []
        key_parts: list[np.ndarray] = []
        item_parts: list[np.ndarray] = []
        probability_parts: list[np.ndarray] = []
        for state in states:
            if not state.active or not state.frontier:
                continue
            entries: list = []
            flat_items: list[int] = []
            entry_keys: list[int] = []
            entry_counts: list[int] = []
            items = state.items
            for entry in state.frontier:
                positions = entry[3]
                if not positions:
                    continue
                entries.append((entry, positions))
                flat_items.extend(items[position] for position in positions)
                entry_keys.append(entry[1])
                entry_counts.append(len(positions))
            if not entries:
                state.frontier = []
                continue
            item_array = np.asarray(flat_items, dtype=np.int64)
            probability_parts.append(state.bound.sampling_probabilities(level, item_array))
            item_parts.append(item_array)
            key_parts.append(
                np.repeat(np.asarray(entry_keys, dtype=np.uint64), entry_counts)
            )
            work.append((state, entries, len(flat_items)))
        if not work:
            break

        extended_keys, hash_values = hasher.extension_pairs_flat(
            np.concatenate(key_parts), np.concatenate(item_parts), level
        )
        chosen_flat = hash_values < np.concatenate(probability_parts)

        query_start = 0
        for state, entries, total_candidates in work:
            offset = query_start
            query_start += total_candidates
            next_frontier: list[tuple[tuple[int, ...], int, float, list[int]]] = []
            for entry, positions in entries:
                if state.truncated:
                    break
                path, _key, log_product, _positions = entry
                state.expansions += 1
                for local_index, position in enumerate(positions):
                    if not chosen_flat[offset + local_index]:
                        continue
                    new_path = path + (state.items[position],)
                    new_log_product = log_product + state.log_probs[position]
                    if log_stop is not None and new_log_product <= log_stop:
                        state.finished_paths.append(new_path)
                        state.finished_keys.append(int(extended_keys[offset + local_index]))
                    else:
                        next_frontier.append(
                            (
                                new_path,
                                int(extended_keys[offset + local_index]),
                                new_log_product,
                                [other for other in positions if other != position],
                            )
                        )
                    if (
                        max_paths is not None
                        and len(state.finished_paths) + len(next_frontier) >= max_paths
                    ):
                        state.truncated = True
                        break
                offset += len(positions)
            state.frontier = next_frontier
            if state.truncated:
                state.active = False

    results: list[PathGenerationResult] = []
    for state in states:
        if generator._collect_at_max_depth:
            for path, key, _log, _positions in state.frontier:
                state.finished_paths.append(path)
                state.finished_keys.append(key)
        results.append(
            PathGenerationResult(
                paths=state.finished_paths,
                truncated=state.truncated,
                expansions=state.expansions,
                keys=state.finished_keys,
            )
        )
    return results


# --------------------------------------------------------------------- #
# Reference implementation 2: the whole-stream chained compaction (the
# pre-kernel ``InvertedFilterIndex.compact`` collision fallback).
# --------------------------------------------------------------------- #


def _reference_compact(index: InvertedFilterIndex):
    """The replaced compaction on a forced-collision stream, end to end.

    Mirrors the pre-kernel ``compact()``: stable key sort, vectorised path
    consistency check, and — because the stream is known to collide — the
    per-entry Python dict loop (``_compact_chained``) over *every* posting,
    followed by the probe-table sort.  Returns the slot keys, posting lists
    and the key-order permutation for the equivalence assertion.
    """
    stream_keys = np.asarray(index._pending_keys, dtype=np.uint64)
    stream_ids = np.asarray(index._pending_ids, dtype=np.int64)
    stream_paths = list(index._pending_paths)
    pending_items, pending_offsets = paths_to_csr(stream_paths)
    table_lengths = np.diff(pending_offsets)

    order = np.argsort(stream_keys, kind="stable")
    keys_sorted = stream_keys[order]
    refs_sorted = np.arange(stream_keys.size, dtype=np.int64)[order]
    group_start = np.empty(keys_sorted.size, dtype=bool)
    group_start[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=group_start[1:])

    # _paths_consistent: vectorised adjacent-pair comparison.
    adjacent = np.flatnonzero(~group_start[1:])
    left = refs_sorted[adjacent]
    right = refs_sorted[adjacent + 1]
    differing = left != right
    consistent = True
    if np.any(differing):
        left = left[differing]
        right = right[differing]
        lengths = table_lengths[left]
        if np.any(lengths != table_lengths[right]):
            consistent = False
        else:
            nonzero = lengths > 0
            left_items = _segment_gather(
                pending_items, pending_offsets[:-1][left[nonzero]], lengths[nonzero]
            )
            right_items = _segment_gather(
                pending_items, pending_offsets[:-1][right[nonzero]], lengths[nonzero]
            )
            consistent = bool(np.array_equal(left_items, right_items))
    assert not consistent, "forced-collision stream came out consistent"

    # _compact_chained: per-entry dict buckets over the whole stream.
    slot_by_key: dict = {}
    slot_paths: list[tuple[int, ...]] = []
    slot_keys: list[int] = []
    slot_postings: list[list[int]] = []
    for key, path, vector_id in zip(stream_keys.tolist(), stream_paths, stream_ids.tolist()):
        bucket = slot_by_key.get(key)
        slot = -1
        if bucket is None:
            slot_by_key[key] = slot = len(slot_paths)
            slot_paths.append(path)
            slot_keys.append(key)
            slot_postings.append([])
        elif isinstance(bucket, int):
            if slot_paths[bucket] == path:
                slot = bucket
            else:
                slot = len(slot_paths)
                slot_by_key[key] = [bucket, slot]
                slot_paths.append(path)
                slot_keys.append(key)
                slot_postings.append([])
        else:
            for candidate in bucket:
                if slot_paths[candidate] == path:
                    slot = candidate
                    break
            if slot < 0:
                slot = len(slot_paths)
                bucket.append(slot)
                slot_paths.append(path)
                slot_keys.append(key)
                slot_postings.append([])
        slot_postings[slot].append(vector_id)

    paths_to_csr(slot_paths)  # the old path rebuilt the CSR view of the slots
    key_array = np.asarray(slot_keys, dtype=np.uint64)
    key_order = np.argsort(key_array, kind="stable").astype(np.int64)  # probe tables
    return key_array, slot_postings, key_order


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #


def _build_workload(distribution):
    num_vectors = int(os.environ.get("REPRO_BENCH_KERNELS_N", "20000"))
    rng = rng_for("bench:kernels-dataset")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    members = [sorted(vector) for vector in dataset]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=1, seed=1)
    )
    engine = index._create_engine(num_vectors)
    generator = engine._generators[0]
    generator.ensure_hash_levels()
    bounds = [engine._threshold_policy.bind(vector) for vector in members]
    return num_vectors, members, generator, bounds


def _chunked(generate, members, bounds):
    results = []
    for start in range(0, len(members), CHUNK):
        results.extend(generate(members[start : start + CHUNK], bounds[start : start + CHUNK]))
    return results


def _results_equal(new: list[PathGenerationResult], old: list[PathGenerationResult]) -> bool:
    return all(
        a.paths == b.paths
        and a.keys == b.keys
        and a.truncated == b.truncated
        and a.expansions == b.expansions
        for a, b in zip(new, old)
    )


# --------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------- #


def _run_kernels(distribution) -> dict:
    num_vectors, members, generator, bounds = _build_workload(distribution)
    counters = new_counters()

    # Exclude one-time costs (hash levels, numba JIT) from both stages.
    warm_up(
        lambda: generator.generate_batch(members[:64], bounds[:64], counters=new_counters()),
        lambda: _reference_generate_batch(generator, members[:64], bounds[:64]),
    )

    new_start = time.perf_counter()
    new_results = _chunked(
        lambda m, b: generator.generate_batch(m, b, counters=counters), members, bounds
    )
    new_extension_seconds = time.perf_counter() - new_start

    old_start = time.perf_counter()
    old_results = _chunked(
        lambda m, b: _reference_generate_batch(generator, m, b), members, bounds
    )
    old_extension_seconds = time.perf_counter() - old_start

    assert _results_equal(new_results, old_results), (
        "kernel path extension diverged from the tuple-frontier reference"
    )

    # Flatten the generated filters into one posting stream and force key
    # collisions on a slice of it, so compaction must resolve chains.
    entries: list[tuple[int, tuple[int, ...]]] = []
    stream_keys: list[int] = []
    for vector_id, result in enumerate(new_results):
        for path, key in zip(result.paths, result.keys):
            entries.append((vector_id, path))
            stream_keys.append(key)
    keys = np.asarray(stream_keys, dtype=np.uint64)
    num_entries = keys.size
    collide = rng_for("bench:kernels-dataset").choice(
        num_entries, size=max(1, int(num_entries * COLLISION_RATE)), replace=False
    )
    keys[collide] = keys[(collide + 1) % num_entries]

    def fill() -> InvertedFilterIndex:
        store = InvertedFilterIndex()
        start = 0
        while start < num_entries:
            end = start
            vector_id = entries[start][0]
            while end < num_entries and entries[end][0] == vector_id:
                end += 1
            store.add(
                vector_id,
                [entries[position][1] for position in range(start, end)],
                keys=[int(keys[position]) for position in range(start, end)],
            )
            start = end
        return store

    def small_forced_compact() -> None:
        store = InvertedFilterIndex()
        store.add(0, [(1, 2), (3, 4)], keys=[5, 5])
        store.compact()

    warm_up(small_forced_compact)  # JIT-compile chain_resolve before timing

    new_store = fill()
    old_store = fill()

    new_start = time.perf_counter()
    new_store.compact()
    new_compaction_seconds = time.perf_counter() - new_start

    old_start = time.perf_counter()
    key_array, slot_postings, key_order = _reference_compact(old_store)
    old_compaction_seconds = time.perf_counter() - old_start

    assert np.array_equal(key_array[key_order], new_store._path_keys), (
        "kernel compaction slot keys diverged from the chained reference"
    )
    new_offsets = new_store._posting_offsets
    new_postings = [
        new_store._posting_ids[new_offsets[slot] : new_offsets[slot + 1]].tolist()
        for slot in range(new_store._path_keys.size)
    ]
    assert [slot_postings[slot] for slot in key_order.tolist()] == new_postings, (
        "kernel compaction posting lists diverged from the chained reference"
    )

    return {
        "num_vectors": num_vectors,
        "num_entries": int(num_entries),
        "paths_extended": int(counters[PATHS_EXTENDED]),
        "keys_folded": int(counters[KEYS_FOLDED]),
        "chain_probes": int(new_store.kernel_counters[CHAIN_PROBES]),
        "new_extension_seconds": new_extension_seconds,
        "old_extension_seconds": old_extension_seconds,
        "extension_speedup": old_extension_seconds / new_extension_seconds,
        "new_compaction_seconds": new_compaction_seconds,
        "old_compaction_seconds": old_compaction_seconds,
        "compaction_speedup": old_compaction_seconds / new_compaction_seconds,
    }


def test_kernel_stage_speedups(benchmark, bench_skewed_distribution):
    result = benchmark.pedantic(
        _run_kernels,
        kwargs=dict(distribution=bench_skewed_distribution),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "stage": "path extension",
                    "reference s": round(result["old_extension_seconds"], 3),
                    "kernel s": round(result["new_extension_seconds"], 3),
                    "speedup": round(result["extension_speedup"], 2),
                    "work": result["paths_extended"],
                },
                {
                    "stage": "build compaction",
                    "reference s": round(result["old_compaction_seconds"], 3),
                    "kernel s": round(result["new_compaction_seconds"], 3),
                    "speedup": round(result["compaction_speedup"], 2),
                    "work": result["chain_probes"],
                },
            ],
            title=(
                f"Kernel stage speedups (n={result['num_vectors']}, "
                f"{result['num_entries']} postings, identical results)"
            ),
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "compiled kernels accelerate path extension and "
            "compaction without changing any generated filter or posting list",
            "num_vectors": result["num_vectors"],
            "num_entries": result["num_entries"],
            "paths_extended": result["paths_extended"],
            "keys_folded": result["keys_folded"],
            "chain_probes": result["chain_probes"],
            "kernel_extension_speedup": result["extension_speedup"],
            "kernel_compaction_speedup": result["compaction_speedup"],
            "min_kernel_extension_speedup": MIN_STAGE_SPEEDUP,
            "min_kernel_compaction_speedup": MIN_STAGE_SPEEDUP,
        }
    )

    assert result["extension_speedup"] >= MIN_STAGE_SPEEDUP, (
        f"path extension regression: {result['extension_speedup']:.2f}x "
        f"< {MIN_STAGE_SPEEDUP}x"
    )
    assert result["compaction_speedup"] >= MIN_STAGE_SPEEDUP, (
        f"build compaction regression: {result['compaction_speedup']:.2f}x "
        f"< {MIN_STAGE_SPEEDUP}x"
    )

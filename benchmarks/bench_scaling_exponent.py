"""Scaling validation — does the measured work grow like n^ρ?

The analytic benches check the ρ values the theory predicts; this bench
closes the loop on the *empirical* side: it builds the correlated index on
the same skewed distribution at two dataset sizes, measures the average
number of candidates examined per planted query, and compares the implied
growth exponent ``log(work_large / work_small) / log(n_large / n_small)``
against the ρ predicted by Theorem 1 for that distribution.

At these small sizes constant factors are still visible, so the assertion is
deliberately loose: the measured exponent must be well below 1 (sub-linear
growth) and within a generous band of the prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.evaluation.reporting import format_table
from repro.theory.rho import solve_correlated_rho

ALPHA = 2.0 / 3.0
SIZES = (150, 600)
NUM_QUERIES = 30
REPETITIONS = 4


def _mean_candidates(distribution, num_vectors: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = CorrelatedIndex(
        distribution, config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=REPETITIONS, seed=seed)
    )
    index.build(dataset)
    work = []
    for target in range(NUM_QUERIES):
        query = distribution.sample_correlated(dataset[target], ALPHA, rng)
        _result, stats = index.query(query)
        work.append(stats.candidates_examined)
    return float(np.mean(work))


def test_work_scales_sublinearly(benchmark, bench_skewed_distribution):
    predicted_rho = solve_correlated_rho(bench_skewed_distribution.probabilities, ALPHA)

    def run():
        return {size: _mean_candidates(bench_skewed_distribution, size, seed=41) for size in SIZES}

    work = benchmark.pedantic(run, rounds=1, iterations=1)

    small, large = SIZES
    # Guard against a zero measurement at the small size (perfectly filtered).
    work_small = max(work[small], 1.0)
    work_large = max(work[large], 1.0)
    measured_exponent = float(np.log(work_large / work_small) / np.log(large / small))

    print()
    print(
        format_table(
            [
                {"n": size, "mean_candidates": round(work[size], 1)} for size in SIZES
            ]
            + [
                {"n": "exponent (measured)", "mean_candidates": round(measured_exponent, 3)},
                {"n": "rho (Theorem 1)", "mean_candidates": round(predicted_rho, 3)},
            ],
            title="Query work vs dataset size on the skewed distribution (alpha = 2/3)",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "query work grows like n^rho with rho < 1",
            "measured_exponent": round(measured_exponent, 3),
            "predicted_rho": round(predicted_rho, 3),
        }
    )
    assert measured_exponent < 0.85
    assert measured_exponent < predicted_rho + 0.45

"""Binary persistence (formats v2 and v3) vs the legacy v1 JSON dump.

Builds a skew-adaptive index over ``n`` vectors (``REPRO_BENCH_SER_N``,
default 10 000), saves it as v1 JSON, a v2 compressed container and a v3
sharded directory, and measures sizes, save times and load times.  The
long-standing acceptance bound of the persistence subsystem is that the v2
container is >= 5x smaller and ``load_index`` >= 5x faster than the v1 JSON
path at the default size, with every loaded index answering a query sample
identically to the original — all asserted here.  The v3 numbers (RAM load
of the uncompressed sharded layout; cold-open behaviour has its own
benchmark in ``bench_cold_start.py``) are reported alongside for the perf
trajectory.

CI runs this on a small size (``REPRO_BENCH_SER_N=2000``) as a smoke check
and uploads the pytest-benchmark JSON (``BENCH_serialization.json``) as an
artifact; the acceptance-level configuration is the default n=10000.
"""

from __future__ import annotations

import os
import time

from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.core.serialization import (
    _save_legacy_v1,
    index_disk_bytes,
    load_index,
    save_index,
)
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

#: Acceptance bounds at the default n=10000 (smaller sizes are smoke-only:
#: fixed overheads dominate tiny files, so the gates scale down with n).
MIN_SIZE_RATIO = 5.0
MIN_LOAD_SPEEDUP = 5.0

#: Below this dataset size the 5x bounds are relaxed to this floor.
SMOKE_FLOOR = 2.0
ACCEPTANCE_N = 10_000


def _run(distribution, num_vectors: int, tmp_path) -> dict:
    rng = rng_for("bench:serialization-dataset")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
    )
    index.build(dataset)

    v1_path = tmp_path / "index_v1.json"
    v2_path = tmp_path / "index_v2.bin"
    v3_path = tmp_path / "index_v3"

    v1_save_start = time.perf_counter()
    _save_legacy_v1(index, v1_path)
    v1_save_seconds = time.perf_counter() - v1_save_start

    v2_save_start = time.perf_counter()
    save_index(index, v2_path, config=PersistenceConfig(format_version=2))
    v2_save_seconds = time.perf_counter() - v2_save_start

    v3_save_start = time.perf_counter()
    save_index(index, v3_path)
    v3_save_seconds = time.perf_counter() - v3_save_start

    v1_load_start = time.perf_counter()
    loaded_v1 = load_index(v1_path)
    v1_load_seconds = time.perf_counter() - v1_load_start

    v2_load_start = time.perf_counter()
    loaded_v2 = load_index(v2_path)
    v2_load_seconds = time.perf_counter() - v2_load_start

    v3_load_start = time.perf_counter()
    loaded_v3 = load_index(v3_path)
    v3_load_seconds = time.perf_counter() - v3_load_start

    sample = dataset[: min(50, len(dataset))]
    original = [index.query(query)[0] for query in sample]
    assert [loaded_v2.query(query)[0] for query in sample] == original, (
        "v2-loaded index diverged from the original"
    )
    assert [loaded_v1.query(query)[0] for query in sample] == original, (
        "v1-loaded index diverged from the original"
    )
    assert [loaded_v3.query(query)[0] for query in sample] == original, (
        "v3-loaded index diverged from the original"
    )

    v1_size = v1_path.stat().st_size
    v2_size = v2_path.stat().st_size
    v3_size = index_disk_bytes(v3_path)
    return {
        "num_vectors": num_vectors,
        "v1_size": v1_size,
        "v2_size": v2_size,
        "v3_size": v3_size,
        "size_ratio": v1_size / v2_size,
        "v1_save_seconds": v1_save_seconds,
        "v2_save_seconds": v2_save_seconds,
        "v3_save_seconds": v3_save_seconds,
        "v1_load_seconds": v1_load_seconds,
        "v2_load_seconds": v2_load_seconds,
        "v3_load_seconds": v3_load_seconds,
        "load_speedup": v1_load_seconds / v2_load_seconds,
        "v3_load_speedup_vs_v2": v2_load_seconds / v3_load_seconds,
    }


def test_binary_persistence_vs_v1_json(benchmark, bench_skewed_distribution, tmp_path):
    num_vectors = int(os.environ.get("REPRO_BENCH_SER_N", str(ACCEPTANCE_N)))

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            tmp_path=tmp_path,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "v1 bytes": result["v1_size"],
                    "v2 bytes": result["v2_size"],
                    "size ratio": round(result["size_ratio"], 2),
                    "v3 bytes": result["v3_size"],
                    "v1 load s": round(result["v1_load_seconds"], 3),
                    "v2 load s": round(result["v2_load_seconds"], 3),
                    "v3 load s": round(result["v3_load_seconds"], 3),
                    "load speedup": round(result["load_speedup"], 2),
                }
            ],
            title="Persistence: v1 JSON vs v2 container vs v3 shards, identical queries",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "build once, reload everywhere: the filter "
            "structure costs O(d n^(1+rho)) to build, so loads must be cheap",
            "num_vectors": result["num_vectors"],
            "v1_size_bytes": result["v1_size"],
            "v2_size_bytes": result["v2_size"],
            "serialization_size_ratio": result["size_ratio"],
            "v1_load_seconds": result["v1_load_seconds"],
            "v2_load_seconds": result["v2_load_seconds"],
            "v3_load_seconds": result["v3_load_seconds"],
            "v3_size_bytes": result["v3_size"],
            "v3_save_seconds": result["v3_save_seconds"],
            "v3_load_speedup_vs_v2": result["v3_load_speedup_vs_v2"],
            "serialization_load_speedup": result["load_speedup"],
            "min_size_ratio_gate": MIN_SIZE_RATIO,
            "min_load_speedup_gate": MIN_LOAD_SPEEDUP,
        }
    )

    size_bound = MIN_SIZE_RATIO if num_vectors >= ACCEPTANCE_N else SMOKE_FLOOR
    load_bound = MIN_LOAD_SPEEDUP if num_vectors >= ACCEPTANCE_N else SMOKE_FLOOR
    assert result["size_ratio"] >= size_bound, (
        f"v2 files regressed: only {result['size_ratio']:.2f}x smaller than v1 "
        f"(bound {size_bound}x at n={num_vectors})"
    )
    assert result["load_speedup"] >= load_bound, (
        f"v2 loads regressed: only {result['load_speedup']:.2f}x faster than v1 "
        f"(bound {load_bound}x at n={num_vectors})"
    )

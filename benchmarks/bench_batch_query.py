"""Batched vs. looped single-query throughput — the batch subsystem's gate.

Builds a skew-adaptive index over ``n`` vectors (``REPRO_BENCH_BATCH_N``,
default 10 000) and answers the same mixed workload (planted correlated
queries + fresh draws) twice: once through the per-query loop, once through
``query_batch``.  The batched execution must answer the identical workload
with identical results at >= 1.5x the looped throughput — this bound is
enforced both here and by ``benchmarks/check_batch_regression.py``, which CI
runs against the exported pytest-benchmark JSON (``BENCH_batch.json``).

CI runs this on a small size (n=2000) as a smoke gate; the acceptance-level
configuration is the default n=10000.
"""

from __future__ import annotations

import os
import time

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

from conftest import warm_up

#: Minimum batched/looped throughput ratio; keep in sync with
#: benchmarks/check_batch_regression.py (the CI gate).
MIN_SPEEDUP = 1.5


def _workload(distribution, dataset, num_queries, rng):
    """Half planted correlated queries, half fresh draws from the model."""
    planted = [
        distribution.sample_correlated(dataset[index], 0.8, rng)
        for index in range(num_queries // 2)
    ]
    fresh = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_queries - len(planted), rng)
    ]
    return planted + fresh


def _run(distribution, num_vectors: int, num_queries: int) -> dict:
    rng = rng_for("bench:queries")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
    )
    build_stats = index.build(dataset)
    queries = _workload(distribution, dataset, num_queries, rng)

    # Warm both paths (hash levels, CSR store, kernel JIT) before timing.
    warm_up(lambda: index.query(queries[0]), lambda: index.query_batch(queries[:8]))

    loop_start = time.perf_counter()
    looped = [index.query(query)[0] for query in queries]
    loop_seconds = time.perf_counter() - loop_start

    batch_start = time.perf_counter()
    batched, batch_stats = index.query_batch(queries)
    batch_seconds = time.perf_counter() - batch_start

    assert batched == looped, "batched results diverged from the single-query loop"
    return {
        "num_vectors": num_vectors,
        "num_queries": num_queries,
        "build_seconds": build_stats.build_seconds,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "loop_qps": num_queries / loop_seconds,
        "batch_qps": num_queries / batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "dedupe_hit_rate": batch_stats.dedupe_hit_rate,
        "found": sum(1 for result in batched if result is not None),
    }


def test_batched_vs_looped_throughput(benchmark, bench_skewed_distribution):
    num_vectors = int(os.environ.get("REPRO_BENCH_BATCH_N", "10000"))
    num_queries = int(os.environ.get("REPRO_BENCH_BATCH_QUERIES", "300"))

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_queries=num_queries,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "queries": result["num_queries"],
                    "loop q/s": round(result["loop_qps"], 1),
                    "batch q/s": round(result["batch_qps"], 1),
                    "speedup": round(result["speedup"], 2),
                    "dedupe": round(result["dedupe_hit_rate"], 4),
                }
            ],
            title="Batched vs looped query throughput (identical results)",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "batch execution amortises filter hashing, probe "
            "lookups and verification across queries without changing any result",
            "num_vectors": result["num_vectors"],
            "num_queries": result["num_queries"],
            "loop_qps": result["loop_qps"],
            "batch_qps": result["batch_qps"],
            "batched_speedup": result["speedup"],
            "dedupe_hit_rate": result["dedupe_hit_rate"],
            "min_speedup_gate": MIN_SPEEDUP,
        }
    )

    assert result["speedup"] >= MIN_SPEEDUP, (
        f"batched throughput regression: {result['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )

"""Section 7.1 — adversarial-query worked examples.

Regenerates the two worked examples of Section 7.1 (two-block query with
``p_a = 1/4`` and ``p_b = n^{-0.9}``) and checks that the solver reproduces
the constants stated in the paper: ρ ≈ 0.293 vs ρ_CP ≈ 0.528 at b1 = 1/3,
and ρ → 0 vs ρ_CP ≈ 0.194 (with prefix filtering at Ω(n^0.1)) at b1 = 2/3.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import section7_adversarial


def test_section71_adversarial_examples(benchmark):
    rows = benchmark(section7_adversarial.run, num_vectors=10**9, query_size=200)

    print()
    print(section7_adversarial.render(rows))

    by_b1 = {round(float(row["b1"]), 2): row for row in rows}
    benchmark.extra_info.update(
        {
            "paper_expectation": "rho=0.293 vs 0.528 at b1=1/3; rho->0 vs 0.194 at b1=2/3",
            "ours_b1_one_third": by_b1[0.33]["ours"],
            "chosen_path_b1_one_third": by_b1[0.33]["chosen_path"],
            "ours_b1_two_thirds": by_b1[0.67]["ours"],
            "chosen_path_b1_two_thirds": by_b1[0.67]["chosen_path"],
        }
    )
    assert float(by_b1[0.33]["ours"]) == pytest.approx(0.293, abs=0.01)
    assert float(by_b1[0.33]["chosen_path"]) == pytest.approx(0.528, abs=0.01)
    assert float(by_b1[0.67]["ours"]) < 0.05
    assert float(by_b1[0.67]["chosen_path"]) == pytest.approx(0.194, abs=0.01)
    for row in rows:
        assert float(row["prefix_filter_exponent"]) == pytest.approx(0.1, abs=0.01)

"""Section 7.2 — correlated-query worked examples.

Regenerates the Section 7.2 examples: the extreme-skew instance where the
paper's ρ tends to 0 while prefix filtering needs Ω(n^0.1), and the
Θ(1)-probability instances (the Figure 1 regime) where the paper's structure
strictly beats Chosen Path and prefix filtering has exponent 1.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import section7_correlated


def test_section72_correlated_examples(benchmark):
    rows = benchmark(section7_correlated.run, num_vectors=10**9)

    print()
    print(section7_correlated.render(rows))

    extreme = rows[0]
    benchmark.extra_info.update(
        {
            "paper_expectation": "extreme skew: ours -> 0, prefix Omega(n^0.1); "
            "theta(1): ours < chosen_path, prefix = 1",
            "extreme_skew_ours": extreme["ours"],
            "extreme_skew_prefix_exponent": extreme["prefix_filter_exponent"],
        }
    )
    assert float(extreme["ours"]) < 0.1
    assert float(extreme["prefix_filter_exponent"]) == pytest.approx(0.1, abs=0.01)
    for row in rows[1:]:
        assert float(row["ours"]) < float(row["chosen_path"])
        assert float(row["prefix_filter_exponent"]) > 0.5

"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures (or
an ablation / empirical validation of them).  Conventions:

* each bench prints the paper-style table or series to stdout (run pytest
  with ``-s`` to see it) and records the headline numbers in
  ``benchmark.extra_info`` so they end up in the pytest-benchmark JSON;
* datasets are synthetic and scaled so a full ``pytest benchmarks/
  --benchmark-only`` run completes in a few minutes on a laptop;
* all randomness is seeded through :mod:`repro.testing`, the deterministic
  seed registry shared with ``tests/conftest.py``, so CI benchmark runs are
  reproducible (override the base with ``REPRO_SEED_BASE``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import pytest

from repro.data.distributions import ItemDistribution
from repro.data.families import two_block_probabilities, uniform_probabilities
from repro.testing import base_seed, rng_for


def warm_up(*actions: Callable[[], object], repeats: int = 1) -> None:
    """Run each action before the timed region to exclude one-time costs.

    The first execution of a query or build surface pays for hash-level
    instantiation, CSR store materialisation, probe-table construction and —
    when numba is installed — JIT compilation of the hot-path kernels (see
    ``docs/kernels.md``).  Benchmarks measure steady state, so every timed
    code path must be exercised once through this helper first; passing the
    surfaces as thunks keeps the call sites explicit about exactly which
    paths are warmed.
    """
    for _ in range(repeats):
        for action in actions:
            action()


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--drop-caches",
        action="store_true",
        default=False,
        help=(
            "sync and drop the kernel page cache (/proc/sys/vm/drop_caches) "
            "before each cold-start scenario so 'cold' really means cold "
            "disk, not warm page cache.  Needs root and Linux; intended for "
            "off-CI acceptance runs of benchmarks/bench_cold_start.py "
            "(see docs/benchmarks.md)."
        ),
    )


@pytest.fixture(scope="session")
def drop_caches(request: pytest.FixtureRequest) -> bool:
    """Whether ``--drop-caches`` was passed (see ``pytest_addoption``)."""
    return bool(request.config.getoption("--drop-caches"))


@pytest.fixture(scope="session")
def deterministic_seed() -> int:
    """The base seed every dataset fixture derives from (default 0)."""
    return base_seed()


@pytest.fixture(scope="session")
def bench_skewed_distribution() -> ItemDistribution:
    """Two-block skewed distribution used by the empirical benches."""
    probabilities = np.concatenate(
        [
            two_block_probabilities(60, 0.25, 0.25 / 8.0),
            np.full(1200, 0.01),
        ]
    )
    return ItemDistribution(probabilities)


@pytest.fixture(scope="session")
def bench_uniform_distribution() -> ItemDistribution:
    """No-skew distribution with a comparable expected set size."""
    return ItemDistribution(uniform_probabilities(250, 0.08))


@pytest.fixture(scope="session")
def bench_skewed_dataset(bench_skewed_distribution) -> list[frozenset[int]]:
    vectors = bench_skewed_distribution.sample_many(400, rng_for("bench:skewed-dataset"))
    return [vector if vector else frozenset({0}) for vector in vectors]


@pytest.fixture(scope="session")
def bench_uniform_dataset(bench_uniform_distribution) -> list[frozenset[int]]:
    vectors = bench_uniform_distribution.sample_many(400, rng_for("bench:uniform-dataset"))
    return [vector if vector else frozenset({0}) for vector in vectors]

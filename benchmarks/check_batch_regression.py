#!/usr/bin/env python
"""CI gate: fail when a gated benchmark ratio crosses its bound.

Reads a pytest-benchmark JSON export and exits non-zero when any benchmark's
recorded ratio violates its gate.  Two kinds of gates exist:

*Lower-bounded speedups* (must be **at least** the bound; the bound is the
benchmark-exported ``min_<key>`` when present, else ``--min-speedup``,
default 1.5x):

* ``batched_speedup`` — batched vs looped execution
  (``benchmarks/bench_batch_query.py``, exported as ``BENCH_batch.json``);
* ``csr_merge_speedup`` — CSR-native vs set-based candidate merge
  (``benchmarks/bench_candidate_throughput.py``,
  ``BENCH_candidates.json``);
* ``cold_open_speedup``, ``sharded_save_speedup``, ``sharded_load_speedup``
  — v3 cold open-to-first-query and sharded save/load vs the v2 container
  (``benchmarks/bench_cold_start.py``, ``BENCH_cold_start.json``; these
  always export their own scale-aware ``min_*`` bounds);
* ``serving_coalescing_speedup`` — end-to-end saturation throughput of the
  micro-batching server over the same server with the admission window
  disabled (``benchmarks/bench_serving.py``, ``BENCH_serving.json``;
  exports its own ``min_serving_coalescing_speedup`` bound of 2.0);
* ``kernel_extension_speedup``, ``kernel_compaction_speedup`` — the
  hot-path kernel stages (batch path extension and build compaction) over
  faithful copies of the replaced Python implementations
  (``benchmarks/bench_kernels.py``, ``BENCH_kernels.json``; exports its own
  ``min_*`` bounds of 2.0);
* ``shard_fanout_speedup`` — multi-process routed candidate-merge
  throughput over the single-process mmap baseline
  (``benchmarks/bench_shard_fanout.py``, ``BENCH_shard_fanout.json``;
  always exports its own core- and scale-aware
  ``min_shard_fanout_speedup`` — 1.8 with >= 4 cores at acceptance size,
  guard bounds below that).

*Upper-bounded ratios* (must be **at most** the benchmark-exported
``max_<key>`` bound):

* ``mmap_resident_ratio`` — baseline-adjusted resident memory of an mmap
  workload over the RAM-mode load (``bench_cold_start.py``);
* ``routed_p99_ratio`` — open-loop mixed-load per-request p99 of routed
  serving over single-process mmap (``benchmarks/bench_latency.py``,
  ``BENCH_latency.json``; exports a core-aware ``max_routed_p99_ratio``
  guard — loose on purpose, it catches a broken fan-out path, not IPC
  overhead).

Stdlib-only on purpose so the gate can run anywhere the JSON exists::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_query.py \
        --benchmark-only --benchmark-json=BENCH_batch.json
    python benchmarks/check_batch_regression.py BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MIN_SPEEDUP = 1.5

#: extra_info keys holding a gated lower-bounded ratio (>= bound).
GATED_KEYS = (
    "batched_speedup",
    "csr_merge_speedup",
    "cold_open_speedup",
    "sharded_save_speedup",
    "sharded_load_speedup",
    "serving_coalescing_speedup",
    "kernel_extension_speedup",
    "kernel_compaction_speedup",
    "shard_fanout_speedup",
)

#: extra_info keys holding a gated upper-bounded ratio (<= ``max_<key>``).
GATED_MAX_KEYS = ("mmap_resident_ratio", "routed_p99_ratio")


def check(report_path: Path, min_speedup: float) -> int:
    """Return a process exit code: 0 when every gate passes."""
    try:
        payload = json.loads(report_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: benchmark report {report_path} does not exist")
        return 2
    except json.JSONDecodeError as error:
        print(f"FAIL: {report_path} is not valid JSON: {error}")
        return 2

    gated = [
        (entry, key, "min")
        for entry in payload.get("benchmarks", [])
        for key in GATED_KEYS
        if key in entry.get("extra_info", {})
    ] + [
        (entry, key, "max")
        for entry in payload.get("benchmarks", [])
        for key in GATED_MAX_KEYS
        if key in entry.get("extra_info", {})
    ]
    if not gated:
        print(
            f"FAIL: {report_path} contains no benchmarks with a gated ratio "
            f"(looked for {', '.join(GATED_KEYS + GATED_MAX_KEYS)})"
        )
        return 2

    failures = 0
    for entry, key, direction in gated:
        extra = entry["extra_info"]
        value = float(extra[key])
        name = entry.get("name", "<unnamed>")
        detail = f"{key}, n={extra.get('num_vectors', '?')}"
        if direction == "min":
            bound = float(extra.get(f"min_{key}", min_speedup))
            passed = value >= bound
            relation = ">=" if passed else "<"
        else:
            if f"max_{key}" not in extra:
                print(f"FAIL: {name}: {key} is gated but exports no max_{key} bound")
                failures += 1
                continue
            bound = float(extra[f"max_{key}"])
            passed = value <= bound
            relation = "<=" if passed else ">"
        status = "OK:  " if passed else "FAIL:"
        print(f"{status} {name}: {key} {value:.2f} {relation} {bound} ({detail})")
        if not passed:
            failures += 1

    if failures:
        print(f"\n{failures} gate(s) violated their bound")
        return 1
    print(f"\nall {len(gated)} gate(s) meet their bounds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON export")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=f"minimum gated throughput ratio (default {DEFAULT_MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)
    return check(args.report, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

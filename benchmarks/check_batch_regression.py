#!/usr/bin/env python
"""CI gate: fail when a gated query-throughput ratio regresses below bound.

Reads a pytest-benchmark JSON export and exits non-zero when any benchmark's
recorded speedup ratio falls below the minimum (default 1.5x, the project's
acceptance bound).  Two ratios are gated, each produced by its benchmark:

* ``batched_speedup`` — batched vs looped execution
  (``benchmarks/bench_batch_query.py``, exported as ``BENCH_batch.json``);
* ``csr_merge_speedup`` — CSR-native vs set-based candidate merge
  (``benchmarks/bench_candidate_throughput.py``, exported as
  ``BENCH_candidates.json``).

Stdlib-only on purpose so the gate can run anywhere the JSON exists::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_query.py \
        --benchmark-only --benchmark-json=BENCH_batch.json
    python benchmarks/check_batch_regression.py BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MIN_SPEEDUP = 1.5

#: extra_info keys holding a gated throughput ratio.
GATED_KEYS = ("batched_speedup", "csr_merge_speedup")


def check(report_path: Path, min_speedup: float) -> int:
    """Return a process exit code: 0 when every gate passes."""
    try:
        payload = json.loads(report_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: benchmark report {report_path} does not exist")
        return 2
    except json.JSONDecodeError as error:
        print(f"FAIL: {report_path} is not valid JSON: {error}")
        return 2

    gated = [
        (entry, key)
        for entry in payload.get("benchmarks", [])
        for key in GATED_KEYS
        if key in entry.get("extra_info", {})
    ]
    if not gated:
        print(
            f"FAIL: {report_path} contains no benchmarks with a gated speedup "
            f"(looked for {', '.join(GATED_KEYS)})"
        )
        return 2

    failures = 0
    for entry, key in gated:
        extra = entry["extra_info"]
        speedup = float(extra[key])
        name = entry.get("name", "<unnamed>")
        detail = f"{key}, n={extra.get('num_vectors', '?')}"
        if speedup < min_speedup:
            print(f"FAIL: {name}: {speedup:.2f}x < {min_speedup}x ({detail})")
            failures += 1
        else:
            print(f"OK:   {name}: {speedup:.2f}x >= {min_speedup}x ({detail})")

    if failures:
        print(f"\n{failures} gate(s) below the {min_speedup}x bound")
        return 1
    print(f"\nall {len(gated)} gate(s) meet the {min_speedup}x bound")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON export")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=f"minimum gated throughput ratio (default {DEFAULT_MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)
    return check(args.report, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI gate: fail when batched query throughput regresses below the bound.

Reads a pytest-benchmark JSON export (produced by running
``benchmarks/bench_batch_query.py`` with ``--benchmark-json=BENCH_batch.json``)
and exits non-zero when any benchmark's recorded ``batched_speedup`` falls
below the minimum ratio (default 1.5x, the project's acceptance bound).

Stdlib-only on purpose so the gate can run anywhere the JSON exists::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_query.py \
        --benchmark-only --benchmark-json=BENCH_batch.json
    python benchmarks/check_batch_regression.py BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MIN_SPEEDUP = 1.5


def check(report_path: Path, min_speedup: float) -> int:
    """Return a process exit code: 0 when every gate passes."""
    try:
        payload = json.loads(report_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: benchmark report {report_path} does not exist")
        return 2
    except json.JSONDecodeError as error:
        print(f"FAIL: {report_path} is not valid JSON: {error}")
        return 2

    gated = [
        entry
        for entry in payload.get("benchmarks", [])
        if "batched_speedup" in entry.get("extra_info", {})
    ]
    if not gated:
        print(f"FAIL: {report_path} contains no benchmarks with a 'batched_speedup'")
        return 2

    failures = 0
    for entry in gated:
        extra = entry["extra_info"]
        speedup = float(extra["batched_speedup"])
        name = entry.get("name", "<unnamed>")
        detail = (
            f"n={extra.get('num_vectors', '?')}, "
            f"loop={extra.get('loop_qps', 0):.0f} q/s, "
            f"batch={extra.get('batch_qps', 0):.0f} q/s"
        )
        if speedup < min_speedup:
            print(f"FAIL: {name}: {speedup:.2f}x < {min_speedup}x ({detail})")
            failures += 1
        else:
            print(f"OK:   {name}: {speedup:.2f}x >= {min_speedup}x ({detail})")

    if failures:
        print(f"\n{failures} benchmark(s) below the {min_speedup}x gate")
        return 1
    print(f"\nall {len(gated)} benchmark(s) meet the {min_speedup}x gate")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON export")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=f"minimum batched/looped throughput ratio (default {DEFAULT_MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)
    return check(args.report, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

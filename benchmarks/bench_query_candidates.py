"""Empirical end-to-end comparison — recall and work of every method.

Validates the analytic claims of Theorems 1-2 end to end: the skew-adaptive
indexes are built on synthetic data drawn from the paper's model, α-correlated
queries are planted, and the candidates examined (the paper's work unit) and
recall of every method are measured, on a skewed and on a uniform instance.

Expected shape (matching the paper's discussion):
* on the skewed instance the correlated skew-adaptive index examines far
  fewer candidates than brute force, and no more than Chosen Path;
* on the uniform instance skew-adaptive and Chosen Path behave comparably
  (no skew to exploit);
* all approximate methods reach high recall on the planted queries.
"""

from __future__ import annotations

from repro.evaluation.experiments import empirical


def test_empirical_method_comparison(benchmark):
    rows = benchmark.pedantic(
        empirical.run,
        kwargs=dict(num_vectors=300, num_queries=30, alpha=2.0 / 3.0, seed=1, repetitions=5),
        rounds=1,
        iterations=1,
    )

    print()
    print(empirical.render(rows))

    by_key = {(row["setting"], row["method"]): row for row in rows}
    ours_skewed = by_key[("skewed", "correlated (ours)")]
    chosen_skewed = by_key[("skewed", "chosen_path")]
    brute_skewed = by_key[("skewed", "brute_force")]
    prefix_skewed = by_key[("skewed", "prefix_filter")]

    benchmark.extra_info.update(
        {
            "paper_expectation": "ours examines far fewer candidates than brute force on "
            "skewed data at comparable recall; degrades gracefully to Chosen Path without skew",
            "ours_skewed_recall": ours_skewed["recall@1"],
            "ours_skewed_candidates": ours_skewed["mean_candidates"],
            "chosen_path_skewed_candidates": chosen_skewed["mean_candidates"],
            "prefix_skewed_candidates": prefix_skewed["mean_candidates"],
            "brute_force_candidates": brute_skewed["mean_candidates"],
        }
    )

    # Recall: the planted partner is recovered most of the time.
    assert float(ours_skewed["recall@1"]) >= 0.7
    assert float(brute_skewed["recall@1"]) >= 0.9
    # Work: far below a linear scan on the skewed instance.
    assert float(ours_skewed["mean_candidates"]) < 0.5 * float(brute_skewed["mean_candidates"])
    # Uniform instance: both filter-based methods still answer queries.
    ours_uniform = by_key[("uniform", "correlated (ours)")]
    assert float(ours_uniform["recall@1"]) >= 0.5

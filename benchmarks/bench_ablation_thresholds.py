"""Ablations — which design choices of the paper's structure matter.

Three design choices distinguish the paper's data structure from plain
Chosen Path (Section 3, footnote 7):

1. the distribution-aware threshold ``(1+δ)/(p̂_i m − j)`` instead of the
   constant ``1/(b1 |x|)``,
2. the per-path probability-product stopping rule instead of a fixed depth,
3. the ``(1 + δ)`` boost securing correctness of the correlated variant.

Each ablation swaps out one choice and measures recall and candidates
examined on the same skewed planted-query workload, so the contribution of
every ingredient is visible.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.baselines.chosen_path import ChosenPathIndex
from repro.evaluation.reporting import format_table
from repro.hashing.random_source import RandomSource

ALPHA = 2.0 / 3.0
NUM_QUERIES = 30
REPETITIONS = 5


def _planted_workload(distribution, dataset, seed):
    source = RandomSource(seed)
    targets = source.generator.choice(len(dataset), size=NUM_QUERIES, replace=False)
    queries = []
    for query_number, target in enumerate(int(t) for t in targets):
        queries.append(
            (
                target,
                distribution.sample_correlated(
                    dataset[target], ALPHA, source.child(query_number).generator
                ),
            )
        )
    return queries


def _evaluate(index, queries):
    hits = 0
    candidates = []
    for target, query in queries:
        result, stats = index.query(query)
        candidates.append(stats.candidates_examined)
        if result == target:
            hits += 1
    return hits / len(queries), float(np.mean(candidates))


def _build_variants(distribution, dataset):
    """All ablation variants, fully built."""
    b1 = ALPHA / 1.3
    b2 = max(distribution.expected_similarity(), 0.02)
    variants = {}

    full = CorrelatedIndex(
        distribution, config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=REPETITIONS, seed=1)
    )
    full.build(dataset)
    variants["full (distribution-aware + product stop + delta boost)"] = full

    no_boost = CorrelatedIndex(
        distribution,
        config=CorrelatedIndexConfig(
            alpha=ALPHA, repetitions=REPETITIONS, seed=1, boost_delta=0.0
        ),
    )
    no_boost.build(dataset)
    variants["no delta boost (delta = 0)"] = no_boost

    constant_threshold = ChosenPathIndex(
        distribution.dimension, b1=b1, b2=b2, repetitions=REPETITIONS, seed=1
    )
    constant_threshold.build(dataset)
    variants["constant threshold + fixed depth (Chosen Path)"] = constant_threshold

    return variants


def test_ablation_threshold_and_stopping_rule(benchmark, bench_skewed_distribution, bench_skewed_dataset):
    queries = _planted_workload(bench_skewed_distribution, bench_skewed_dataset, seed=7)
    variants = _build_variants(bench_skewed_distribution, bench_skewed_dataset)

    def run_all():
        return {
            name: _evaluate(index, queries) for name, index in variants.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        {"variant": name, "recall@1": round(recall, 3), "mean_candidates": round(candidates, 1)}
        for name, (recall, candidates) in results.items()
    ]
    print()
    print(
        format_table(
            rows,
            title="Ablation — contribution of the paper's design choices (skewed data, alpha=2/3)",
        )
    )

    full_recall, full_candidates = results[
        "full (distribution-aware + product stop + delta boost)"
    ]
    no_boost_recall, _no_boost_candidates = results["no delta boost (delta = 0)"]
    cp_recall, cp_candidates = results["constant threshold + fixed depth (Chosen Path)"]

    benchmark.extra_info.update(
        {
            "full_recall": round(full_recall, 3),
            "full_candidates": round(full_candidates, 1),
            "no_boost_recall": round(no_boost_recall, 3),
            "chosen_path_recall": round(cp_recall, 3),
            "chosen_path_candidates": round(cp_candidates, 1),
        }
    )

    # The full structure answers planted queries reliably.
    assert full_recall >= 0.7
    assert full_recall >= cp_recall - 0.15
    # Removing the delta boost can only lower (or match) recall: it shrinks
    # every sampling probability (this is the correctness role of delta in
    # Lemma 11).
    assert no_boost_recall <= full_recall + 1e-9
    # Work stays far below a linear scan (the asymptotic comparison against
    # Chosen Path is about exponents and is covered by the Figure 1 bench;
    # at n=400 the constant factors dominate, so only sublinearity is
    # asserted here).
    assert full_candidates < 0.2 * 400

"""Cold start and resident memory: v2 full load vs v3 RAM vs v3 mmap.

The point of the sharded, mmap-native format v3 is that a saved index can be
*opened* instead of *loaded*: cold open-to-first-query latency should not
pay for reading (and inflating) the whole container, and a query workload
that touches a small fraction of the keys should keep a correspondingly
small fraction of the index resident.

This benchmark builds one skew-adaptive index over ``n`` vectors
(``REPRO_BENCH_COLD_N``, default 50 000), saves it as a v2 container and a
v3 shard directory, and then measures each serving scenario in a **fresh
subprocess** (peak RSS via ``getrusage`` is monotone within a process, so
scenarios must not share one):

* ``v2`` — ``load_index`` of the compressed single-file container, then the
  workload;
* ``v3_ram`` — RAM-mode load of the shard directory (parallel shard reads,
  stored keys adopted directly), then the workload;
* ``v3_mmap`` — mmap-mode open (lazy ``np.memmap`` shards), then the
  workload;
* ``baseline`` — imports only, to subtract the interpreter + numpy floor
  from the resident-memory comparison.

Gated numbers (enforced here and by ``check_batch_regression.py`` via the
exported ``BENCH_cold_start.json``):

* ``cold_open_speedup`` — v2 open-to-first-query over v3-mmap
  open-to-first-query: >= 10x at the acceptance size (n >= 50 000), >= 3x
  on CI smoke sizes;
* ``mmap_resident_ratio`` — baseline-adjusted peak RSS of the mmap workload
  over the RAM-mode workload (the workload touches ~``n/1000`` queries, on
  the order of 1% of the stored keys): <= 0.20 at the acceptance size,
  <= 0.60 on smoke sizes;
* ``sharded_save_speedup`` / ``sharded_load_speedup`` — writing/reading the
  8-shard v3 layout vs the single-file v2 container: >= 2x at the
  acceptance size, >= 1.2x on smoke sizes.

**Warm-page-cache caveat.**  By default every scenario reads files the
parent process *just wrote*, so the kernel serves them from the page cache
and the "cold" open times measure decode/arrange cost, not disk I/O.  That
is the right comparison for CI (stable, hardware-independent) but it
understates v3-mmap's advantage on a genuinely cold spindle/NVMe.  For an
honest cold measurement run as root with ``--drop-caches``, which syncs and
writes ``3`` to ``/proc/sys/vm/drop_caches`` before each scenario
subprocess.  See ``docs/benchmarks.md``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.core.serialization import index_disk_bytes, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

ACCEPTANCE_N = 50_000

#: Acceptance bounds at n >= ACCEPTANCE_N.
MIN_COLD_OPEN_SPEEDUP = 10.0
MAX_MMAP_RESIDENT_RATIO = 0.20
MIN_SHARDED_IO_SPEEDUP = 2.0

#: Relaxed smoke bounds below the acceptance size (fixed interpreter and
#: per-file overheads dominate tiny indexes).
SMOKE_MIN_COLD_OPEN_SPEEDUP = 3.0
SMOKE_MAX_MMAP_RESIDENT_RATIO = 0.60
SMOKE_MIN_SHARDED_IO_SPEEDUP = 1.2

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: Subprocess scenario: open (or skip, for the baseline) an index, answer a
#: first query, run the workload, and report timing + peak RSS as JSON.
_CHILD_SCRIPT = """
import json, sys, time

scenario, index_path, queries_path = sys.argv[1], sys.argv[2], sys.argv[3]
mode = {"v2": "ram", "v3_ram": "ram", "v3_mmap": "mmap"}.get(scenario, "ram")


def peak_rss_kb():
    # VmHWM from /proc is a true per-process high-water mark; getrusage's
    # ru_maxrss is the fallback for platforms without procfs (it can report
    # shared/cgroup peaks inside some sandboxes, so procfs wins when present).
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


from repro.core.serialization import load_index  # noqa: E402

with open(queries_path, "r", encoding="utf-8") as handle:
    queries = [frozenset(query) for query in json.load(handle)]

result = {"scenario": scenario}
if scenario == "baseline":
    result["open_to_first_query_seconds"] = 0.0
else:
    start = time.perf_counter()
    index = load_index(index_path, mode=mode)
    index.query(queries[0])
    result["open_to_first_query_seconds"] = time.perf_counter() - start
    workload_start = time.perf_counter()
    matches = sum(1 for query in queries if index.query(query)[0] is not None)
    result["workload_seconds"] = time.perf_counter() - workload_start
    result["workload_matches"] = matches
result["max_rss_kb"] = peak_rss_kb()
print(json.dumps(result))
"""


def _drop_page_cache() -> None:
    """Sync and drop the kernel page cache so file reads hit the disk.

    Requires Linux and root; raises with a clear message otherwise instead
    of silently benchmarking a warm cache under a cold-cache label.
    """
    os.sync()
    try:
        with open("/proc/sys/vm/drop_caches", "w", encoding="ascii") as handle:
            handle.write("3\n")
    except PermissionError as error:
        raise RuntimeError(
            "--drop-caches needs root: writing /proc/sys/vm/drop_caches was "
            "denied (rerun under sudo, or drop the flag to benchmark against "
            "a warm page cache)"
        ) from error
    except FileNotFoundError as error:
        raise RuntimeError(
            "--drop-caches requires Linux procfs (/proc/sys/vm/drop_caches "
            "does not exist on this platform)"
        ) from error


def _run_scenario(
    scenario: str, index_path: str, queries_path: str, *, drop_caches: bool = False
) -> dict:
    if drop_caches:
        _drop_page_cache()
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, scenario, index_path, queries_path],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"cold-start scenario {scenario!r} failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _run(
    distribution, num_vectors: int, num_shards: int, tmp_path, drop_caches: bool = False
) -> dict:
    rng = rng_for("bench:serialization-dataset")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
    )
    build_stats = index.build(dataset)

    # Workload: ~n/1000 queries drawn from the dataset — on the order of 1%
    # of the stored keys once per-repetition filters are accounted.
    num_queries = max(10, num_vectors // 1000)
    step = max(1, len(dataset) // num_queries)
    queries = [sorted(dataset[position]) for position in range(0, len(dataset), step)]
    queries = queries[:num_queries]
    queries_path = tmp_path / "queries.json"
    queries_path.write_text(json.dumps(queries), encoding="utf-8")

    v2_path = tmp_path / "index_v2.bin"
    v3_path = tmp_path / "index_v3"

    v2_save_start = time.perf_counter()
    save_index(index, v2_path, config=PersistenceConfig(format_version=2))
    v2_save_seconds = time.perf_counter() - v2_save_start

    v3_save_start = time.perf_counter()
    save_index(index, v3_path, config=PersistenceConfig(shards=num_shards))
    v3_save_seconds = time.perf_counter() - v3_save_start

    baseline = _run_scenario(
        "baseline", str(v3_path), str(queries_path), drop_caches=drop_caches
    )
    v2 = _run_scenario("v2", str(v2_path), str(queries_path), drop_caches=drop_caches)
    v3_ram = _run_scenario(
        "v3_ram", str(v3_path), str(queries_path), drop_caches=drop_caches
    )
    v3_mmap = _run_scenario(
        "v3_mmap", str(v3_path), str(queries_path), drop_caches=drop_caches
    )
    assert v2["workload_matches"] == v3_ram["workload_matches"] == v3_mmap[
        "workload_matches"
    ], "serving modes disagreed on the workload results"

    baseline_kb = baseline["max_rss_kb"]
    ram_extra_kb = max(v3_ram["max_rss_kb"] - baseline_kb, 1)
    mmap_extra_kb = max(v3_mmap["max_rss_kb"] - baseline_kb, 0)
    return {
        "num_vectors": num_vectors,
        "num_shards": num_shards,
        "num_queries": len(queries),
        "build_seconds": build_stats.build_seconds,
        "v2_size": v2_path.stat().st_size,
        "v3_size": index_disk_bytes(v3_path),
        "v2_save_seconds": v2_save_seconds,
        "v3_save_seconds": v3_save_seconds,
        "sharded_save_speedup": v2_save_seconds / v3_save_seconds,
        "v2_open_first_seconds": v2["open_to_first_query_seconds"],
        "v3_ram_open_first_seconds": v3_ram["open_to_first_query_seconds"],
        "v3_mmap_open_first_seconds": v3_mmap["open_to_first_query_seconds"],
        "cold_open_speedup": v2["open_to_first_query_seconds"]
        / v3_mmap["open_to_first_query_seconds"],
        "sharded_load_speedup": v2["open_to_first_query_seconds"]
        / v3_ram["open_to_first_query_seconds"],
        "baseline_rss_kb": baseline_kb,
        "v2_rss_kb": v2["max_rss_kb"],
        "v3_ram_rss_kb": v3_ram["max_rss_kb"],
        "v3_mmap_rss_kb": v3_mmap["max_rss_kb"],
        "mmap_resident_ratio": mmap_extra_kb / ram_extra_kb,
        "v2_workload_seconds": v2["workload_seconds"],
        "v3_ram_workload_seconds": v3_ram["workload_seconds"],
        "v3_mmap_workload_seconds": v3_mmap["workload_seconds"],
    }


def test_cold_start_and_resident_memory(
    benchmark, bench_skewed_distribution, tmp_path, drop_caches
):
    num_vectors = int(os.environ.get("REPRO_BENCH_COLD_N", str(ACCEPTANCE_N)))
    num_shards = int(os.environ.get("REPRO_BENCH_COLD_SHARDS", "8"))

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_shards=num_shards,
            tmp_path=tmp_path,
            drop_caches=drop_caches,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "shards": result["num_shards"],
                    "v2 open+1q s": round(result["v2_open_first_seconds"], 4),
                    "v3 ram open+1q s": round(result["v3_ram_open_first_seconds"], 4),
                    "v3 mmap open+1q s": round(result["v3_mmap_open_first_seconds"], 4),
                    "cold-open speedup": round(result["cold_open_speedup"], 1),
                    "mmap/ram resident": round(result["mmap_resident_ratio"], 3),
                }
            ],
            title="Cold open-to-first-query and resident memory (fresh process each)",
        )
    )
    print(
        format_table(
            [
                {
                    "v2 save s": round(result["v2_save_seconds"], 3),
                    "v3 save s": round(result["v3_save_seconds"], 3),
                    "save speedup": round(result["sharded_save_speedup"], 2),
                    "load speedup": round(result["sharded_load_speedup"], 2),
                    "v2 bytes": result["v2_size"],
                    "v3 bytes": result["v3_size"],
                }
            ],
            title=f"Sharded ({result['num_shards']}-way) save/load vs single-file v2",
        )
    )

    acceptance = num_vectors >= ACCEPTANCE_N
    min_cold_open = MIN_COLD_OPEN_SPEEDUP if acceptance else SMOKE_MIN_COLD_OPEN_SPEEDUP
    max_resident = (
        MAX_MMAP_RESIDENT_RATIO if acceptance else SMOKE_MAX_MMAP_RESIDENT_RATIO
    )
    min_sharded_io = (
        MIN_SHARDED_IO_SPEEDUP if acceptance else SMOKE_MIN_SHARDED_IO_SPEEDUP
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "the skew-adaptive structure is many small "
            "postings lists; lazily paging them lets an index serve from "
            "storage without fitting in RAM",
            **{key: value for key, value in result.items()},
            "page_cache_dropped": drop_caches,
            "min_cold_open_speedup": min_cold_open,
            "max_mmap_resident_ratio": max_resident,
            "min_sharded_save_speedup": min_sharded_io,
            "min_sharded_load_speedup": min_sharded_io,
        }
    )

    assert result["cold_open_speedup"] >= min_cold_open, (
        f"cold open regressed: v3-mmap only {result['cold_open_speedup']:.1f}x "
        f"faster to first query than a v2 full load (bound {min_cold_open}x "
        f"at n={num_vectors})"
    )
    assert result["mmap_resident_ratio"] <= max_resident, (
        f"mmap residency regressed: workload kept "
        f"{result['mmap_resident_ratio']:.2f} of RAM-mode memory resident "
        f"(bound {max_resident} at n={num_vectors})"
    )
    assert result["sharded_save_speedup"] >= min_sharded_io, (
        f"sharded save regressed: {result['sharded_save_speedup']:.2f}x vs the "
        f"single-file container (bound {min_sharded_io}x at n={num_vectors})"
    )
    assert result["sharded_load_speedup"] >= min_sharded_io, (
        f"sharded load regressed: {result['sharded_load_speedup']:.2f}x vs the "
        f"single-file container (bound {min_sharded_io}x at n={num_vectors})"
    )

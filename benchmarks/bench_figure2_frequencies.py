"""Figure 2 — item-frequency profiles of the benchmark-like datasets.

Regenerates both panels of the paper's Figure 2 (``y = 1 + log_n p_j``
against ``x = j/d`` and against ``x = log_d j``) for synthetic stand-ins of
the ten Mann et al. datasets, and checks that every profile shows the
significant skew the paper reports.
"""

from __future__ import annotations

from repro.evaluation.experiments import figure2


def test_figure2_frequency_profiles(benchmark):
    profiles = benchmark(figure2.run, scale=0.25, seed=0, num_points=40)

    print()
    print(figure2.render(profiles, axis="relative"))
    print()
    print(figure2.render(profiles, axis="log"))

    indicators = figure2.skew_indicators(profiles)
    benchmark.extra_info.update(
        {
            "paper_expectation": "all ten datasets display significant skew",
            "datasets": len(indicators),
            "min_head_to_tail_drop": round(min(row["drop"] for row in indicators), 3),
        }
    )
    assert len(indicators) == 10
    for row in indicators:
        assert row["drop"] > 0.15, f"{row['dataset']} does not look skewed"
        # The head item is close to "appears in a constant fraction of sets"
        # (y close to 1), the tail close to "appears once" (y close to 0).
        assert row["head"] > row["tail"]

"""Serving throughput and latency: micro-batching vs per-request execution.

The serving layer's claim is that coalescing concurrent requests into
batched engine calls buys real capacity — not just on paper (the engine's
batched surfaces amortise filter generation and dedupe shared probes) but
end to end through a TCP socket, JSON parsing and the asyncio admission
loop.  This benchmark measures that claim against the real server:

* one ``repro serve`` subprocess per configuration, mmap-opening the same
  saved v3 index (``--batch-window-ms 2`` vs ``--batch-window-ms 0``, the
  latter executing every request as its own engine call);
* a replay workload of ``REPRO_BENCH_SERVE_REQUESTS`` queries drawn with
  repetition from a pool of stored vectors, issued over
  ``REPRO_BENCH_SERVE_CLIENTS`` (default 32) concurrent keep-alive
  connections;
* **saturation throughput** — every client issues requests back to back;
  the coalesced-over-uncoalesced ratio is the gated number;
* **open-loop latency** — requests arrive on a fixed schedule at fractions
  of the measured saturation rate (arrivals do not wait for completions, so
  queueing delay is charged to the request like a real client would see
  it), reported as p50/p99 per offered load.

Gated number (enforced here and by ``check_batch_regression.py`` via the
exported ``BENCH_serving.json``):

* ``serving_coalescing_speedup`` — saturation throughput of the 2 ms-window
  server over the window-0 server at 32 concurrent clients: >= 2x.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import statistics
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

MIN_SERVING_COALESCING_SPEEDUP = 2.0

#: Fractions of the measured saturation rate the open-loop sweep offers.
OFFERED_LOAD_FRACTIONS = (0.3, 0.6, 0.9)

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

_READY_PATTERN = re.compile(r"listening on http://[^:]+:(\d+)")


class _ServerProcess:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, index_path: str, batch_window_ms: float, max_batch: int):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                index_path,
                "--port",
                "0",
                "--batch-window-ms",
                str(batch_window_ms),
                "--max-batch-size",
                str(max_batch),
                "--load-mode",
                "mmap",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        assert self.process.stdout is not None
        ready_line = self.process.stdout.readline()
        match = _READY_PATTERN.search(ready_line)
        if not match:
            self.process.kill()
            raise RuntimeError(f"server did not come up: {ready_line!r}")
        self.port = int(match.group(1))

    def stats(self) -> dict:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{self.port}/stats", timeout=60
        ) as response:
            return json.loads(response.read())

    def stop(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)


async def _post_query(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, body: bytes
) -> int:
    """One keep-alive POST /query; returns the HTTP status."""
    writer.write(
        b"POST /query HTTP/1.1\r\nHost: bench\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value)
    await reader.readexactly(content_length)
    return status


async def _connect_pool(port: int, size: int) -> list:
    return [await asyncio.open_connection("127.0.0.1", port) for _ in range(size)]


async def _close_pool(pool: list) -> None:
    for _, writer in pool:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _saturation_throughput(port: int, bodies: list[bytes], num_clients: int) -> dict:
    """Closed-loop saturation: ``num_clients`` connections, back-to-back."""

    async def run() -> dict:
        pool = await _connect_pool(port, num_clients)
        shares = [bodies[i::num_clients] for i in range(num_clients)]
        statuses: list[int] = []

        async def client(connection, share):
            reader, writer = connection
            for body in share:
                statuses.append(await _post_query(reader, writer, body))

        start = time.perf_counter()
        await asyncio.gather(
            *(client(pool[i], shares[i]) for i in range(num_clients))
        )
        elapsed = time.perf_counter() - start
        await _close_pool(pool)
        assert all(status == 200 for status in statuses), (
            f"saturation run saw non-200 statuses: "
            f"{sorted(set(statuses) - {200})}"
        )
        return {
            "requests": len(statuses),
            "seconds": elapsed,
            "throughput_qps": len(statuses) / elapsed,
        }

    return asyncio.run(run())


def _open_loop_latency(
    port: int, bodies: list[bytes], rate_qps: float, num_clients: int
) -> dict:
    """Open-loop replay: arrivals on a fixed schedule at ``rate_qps``.

    Arrivals do not wait for completions — each request's latency is
    measured from its *scheduled* arrival, so client-side queueing for a
    free connection is charged to the request exactly as a real open-loop
    client would experience it.
    """

    async def run() -> dict:
        pool = await _connect_pool(port, num_clients)
        free: asyncio.Queue = asyncio.Queue()
        for connection in pool:
            free.put_nowait(connection)
        latencies: list[float] = []
        shed = 0

        async def one(body: bytes, scheduled_at: float) -> None:
            nonlocal shed
            connection = await free.get()
            try:
                reader, writer = connection
                status = await _post_query(reader, writer, body)
                if status == 429:
                    shed += 1
                else:
                    latencies.append(time.perf_counter() - scheduled_at)
            finally:
                free.put_nowait(connection)

        start = time.perf_counter()
        tasks = []
        for i, body in enumerate(bodies):
            scheduled_at = start + i / rate_qps
            delay = scheduled_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(one(body, scheduled_at)))
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        await _close_pool(pool)
        ordered = sorted(latencies)

        def percentile(quantile: float) -> float:
            rank = max(1, int(-(-quantile * len(ordered) // 1)))  # ceil
            return ordered[rank - 1]

        return {
            "offered_qps": rate_qps,
            "achieved_qps": len(bodies) / elapsed,
            "completed": len(latencies),
            "shed": shed,
            "p50_ms": percentile(0.50) * 1000.0,
            "p99_ms": percentile(0.99) * 1000.0,
            "mean_ms": statistics.fmean(ordered) * 1000.0,
        }

    return asyncio.run(run())


def _run(distribution, num_vectors, num_requests, num_clients, window_ms, tmp_path):
    rng = rng_for("bench:serving-dataset")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
    )
    index.build(dataset)
    index_path = tmp_path / "index.v3"
    save_shards = int(os.environ.get("REPRO_BENCH_SERVE_SHARDS", "8"))
    from repro.core.serialization import save_index

    save_index(index, index_path, config=PersistenceConfig(shards=save_shards))

    # Replay trace: draw with repetition from a bounded pool of stored
    # vectors (a serving workload revisits a working set; duplicates let the
    # batch probe dedupe contribute, which is part of the claim).
    pool_size = min(1000, len(dataset))
    replay_rng = rng_for("bench:serving-replay")
    picks = replay_rng.integers(0, pool_size, size=num_requests)
    bodies = [
        json.dumps({"query": sorted(dataset[int(pick)])}).encode() for pick in picks
    ]

    max_batch = max(num_clients * 2, 64)
    coalesced_server = _ServerProcess(str(index_path), window_ms, max_batch)
    try:
        # Warm the page cache and the engine before timing.
        _saturation_throughput(coalesced_server.port, bodies[: num_clients * 4], num_clients)
        coalesced = _saturation_throughput(coalesced_server.port, bodies, num_clients)
        sweep = [
            _open_loop_latency(
                coalesced_server.port,
                bodies,
                fraction * coalesced["throughput_qps"],
                num_clients,
            )
            for fraction in OFFERED_LOAD_FRACTIONS
        ]
        server_stats = coalesced_server.stats()["indexes"]["default"]
    finally:
        coalesced_server.stop()

    uncoalesced_server = _ServerProcess(str(index_path), 0.0, max_batch)
    try:
        _saturation_throughput(
            uncoalesced_server.port, bodies[: num_clients * 4], num_clients
        )
        uncoalesced = _saturation_throughput(uncoalesced_server.port, bodies, num_clients)
    finally:
        uncoalesced_server.stop()

    return {
        "num_vectors": num_vectors,
        "num_requests": len(bodies),
        "num_clients": num_clients,
        "batch_window_ms": window_ms,
        "max_batch_queries": max_batch,
        "replay_pool_size": pool_size,
        "coalesced_throughput_qps": coalesced["throughput_qps"],
        "uncoalesced_throughput_qps": uncoalesced["throughput_qps"],
        "serving_coalescing_speedup": coalesced["throughput_qps"]
        / uncoalesced["throughput_qps"],
        "mean_batch_occupancy": server_stats["mean_batch_occupancy"],
        "max_batch_occupancy": server_stats["max_batch_occupancy"],
        "engine_calls": server_stats["engine_calls"],
        "dedupe_hit_rate": server_stats["engine"]["dedupe_hit_rate"],
        "open_loop": sweep,
    }


def test_serving_micro_batching_throughput(benchmark, bench_skewed_distribution, tmp_path):
    num_vectors = int(os.environ.get("REPRO_BENCH_SERVE_N", "20000"))
    num_requests = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "2000"))
    num_clients = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "32"))
    window_ms = float(os.environ.get("REPRO_BENCH_SERVE_WINDOW_MS", "2.0"))

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_requests=num_requests,
            num_clients=num_clients,
            window_ms=window_ms,
            tmp_path=tmp_path,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "clients": result["num_clients"],
                    "window ms": result["batch_window_ms"],
                    "coalesced qps": round(result["coalesced_throughput_qps"], 0),
                    "window-0 qps": round(result["uncoalesced_throughput_qps"], 0),
                    "speedup": round(result["serving_coalescing_speedup"], 2),
                    "mean occupancy": round(result["mean_batch_occupancy"], 1),
                    "dedupe rate": round(result["dedupe_hit_rate"], 3),
                }
            ],
            title="Saturation throughput: 2 ms admission window vs per-request execution",
        )
    )
    print(
        format_table(
            [
                {
                    "offered qps": round(entry["offered_qps"], 0),
                    "achieved qps": round(entry["achieved_qps"], 0),
                    "p50 ms": round(entry["p50_ms"], 2),
                    "p99 ms": round(entry["p99_ms"], 2),
                    "mean ms": round(entry["mean_ms"], 2),
                    "shed": entry["shed"],
                }
                for entry in result["open_loop"]
            ],
            title="Open-loop latency vs offered load (coalescing server)",
        )
    )

    extra = {key: value for key, value in result.items() if key != "open_loop"}
    for fraction, entry in zip(OFFERED_LOAD_FRACTIONS, result["open_loop"]):
        label = str(int(fraction * 100))
        extra[f"p50_ms_at_{label}pct"] = entry["p50_ms"]
        extra[f"p99_ms_at_{label}pct"] = entry["p99_ms"]
        extra[f"offered_qps_at_{label}pct"] = entry["offered_qps"]
    extra["min_serving_coalescing_speedup"] = MIN_SERVING_COALESCING_SPEEDUP
    extra["paper_expectation"] = (
        "batched query execution amortises filter generation and dedupes "
        "shared probes; server-side micro-batching makes that win available "
        "to concurrent independent clients"
    )
    benchmark.extra_info.update(extra)

    assert result["mean_batch_occupancy"] > 1.0, (
        "the coalescing server never batched anything — the admission "
        "window is not seeing concurrent requests"
    )
    assert result["serving_coalescing_speedup"] >= MIN_SERVING_COALESCING_SPEEDUP, (
        f"micro-batching regressed: only "
        f"{result['serving_coalescing_speedup']:.2f}x the window-0 "
        f"throughput at {num_clients} clients "
        f"(bound {MIN_SERVING_COALESCING_SPEEDUP}x)"
    )

"""Correlation recovery: the sparse light-bulb problem as a search task.

The paper frames similarity search probabilistically: among many independent
random vectors, a few query vectors are α-correlated with specific dataset
vectors, and the task is to recover those partners (the search version of the
light bulb problem, Section 1).  This example plants correlated partners at a
range of correlation levels and measures how recovery rate and work change
with α for the correlated skew-adaptive index, with a brute-force scan as the
reference.

Run with::

    python examples/correlated_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BruteForceIndex,
    CorrelatedIndex,
    CorrelatedIndexConfig,
    ItemDistribution,
    SimilarityPredicate,
)
from repro.data.families import two_block_probabilities
from repro.evaluation.reporting import format_table


def main() -> None:
    rng = np.random.default_rng(19)

    # Skewed universe: a frequent block plus a rare tail (the regime where
    # the paper's structure shines).
    probabilities = np.concatenate(
        [two_block_probabilities(80, 0.25, 0.25 / 8.0), np.full(1500, 0.008)]
    )
    distribution = ItemDistribution(probabilities)
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(500, rng)
    ]
    num_queries = 40

    rows = []
    for alpha in (0.5, 0.6, 0.7, 0.8, 0.9):
        index = CorrelatedIndex(
            distribution, config=CorrelatedIndexConfig(alpha=alpha, repetitions=6, seed=5)
        )
        index.build(dataset)

        brute = BruteForceIndex(SimilarityPredicate("braun_blanquet", alpha / 1.3))
        brute.build(dataset)

        hits = 0
        brute_hits = 0
        candidates = []
        for target in range(num_queries):
            query = distribution.sample_correlated(dataset[target], alpha, rng)
            result, stats = index.query(query)
            candidates.append(stats.candidates_examined)
            if result == target:
                hits += 1
            brute_result, _brute_stats = brute.query(query, mode="best")
            if brute_result == target:
                brute_hits += 1

        rows.append(
            {
                "alpha": alpha,
                "recall (ours)": hits / num_queries,
                "recall (exact scan)": brute_hits / num_queries,
                "mean candidates (ours)": float(np.mean(candidates)),
                "linear scan candidates": len(dataset),
            }
        )

    print(
        format_table(
            rows,
            title=(
                "Recovering alpha-correlated partners: recall and work vs correlation "
                f"level (n = {len(dataset)}, skewed two-block + rare-tail distribution)"
            ),
        )
    )
    print(
        "\nHigher correlation makes recovery easier (higher recall, less work); the\n"
        "exact-scan column shows how often the planted partner is even the nearest\n"
        "vector — the gap to 1.0 is noise inherent to the instance, not index loss."
    )


if __name__ == "__main__":
    main()

"""Method comparison: all indexes, side by side, on skewed and uniform data.

Runs the library's evaluation harness end to end — the same experiment the
``bench_query_candidates`` benchmark uses — and prints the recall / work
table for every method on a skewed and on a no-skew instance, so you can see
the paper's story in one screen:

* the skew-adaptive indexes examine far fewer candidates than brute force on
  skewed data at comparable recall,
* prefix filtering is exact but its work depends entirely on the skew,
* without skew everything degrades gracefully towards Chosen Path.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro.evaluation.experiments import empirical


def main() -> None:
    rows = empirical.run(num_vectors=400, num_queries=40, alpha=2.0 / 3.0, seed=3, repetitions=6)
    print(empirical.render(rows))

    by_key = {(row["setting"], row["method"]): row for row in rows}
    ours = by_key[("skewed", "correlated (ours)")]
    brute = by_key[("skewed", "brute_force")]
    saving = float(brute["mean_candidates"]) / max(float(ours["mean_candidates"]), 1e-9)
    print(
        f"\nOn the skewed instance the correlated skew-adaptive index examined "
        f"{saving:.0f}x fewer candidates than the exact scan at recall "
        f"{ours['recall@1']}."
    )


if __name__ == "__main__":
    main()

"""Data cleaning: find near-duplicate records with a similarity self-join.

The paper's opening motivation is data cleaning — "identify different
representations of the same object".  This example builds a small synthetic
"dirty" catalogue: each record is a set of tokens (attribute values, words)
drawn from a skewed vocabulary, and a fraction of the records are noisy
re-insertions of existing ones (tokens dropped / replaced).  A similarity
self-join over the skew-adaptive index recovers the duplicate pairs while
verifying only a small fraction of the quadratic number of pairs.

Run with::

    python examples/data_cleaning_join.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BruteForceIndex,
    ItemDistribution,
    SimilarityPredicate,
    SkewAdaptiveIndex,
    similarity_self_join,
)
from repro.data.families import piecewise_zipfian_probabilities


def make_dirty_catalogue(
    num_clean: int, num_duplicates: int, seed: int
) -> tuple[list[frozenset[int]], set[tuple[int, int]]]:
    """A catalogue of token sets with noisy duplicate re-insertions."""
    rng = np.random.default_rng(seed)
    vocabulary = piecewise_zipfian_probabilities(
        3000, breakpoints=[0.02], exponents=[0.5, 1.4], maximum=0.3
    )
    # Scale so records have ~25 tokens on average.
    vocabulary = vocabulary * (25.0 / vocabulary.sum())
    distribution = ItemDistribution(np.clip(vocabulary, 0.0, 0.5))

    records = distribution.sample_many(num_clean, rng)
    records = [record if record else frozenset({0}) for record in records]

    true_pairs: set[tuple[int, int]] = set()
    for _ in range(num_duplicates):
        original_id = int(rng.integers(0, num_clean))
        original = sorted(records[original_id])
        # Keep ~85% of the tokens and add a couple of random new ones.
        keep = max(1, int(0.85 * len(original)))
        kept = rng.choice(original, size=keep, replace=False).tolist()
        noise = rng.integers(0, distribution.dimension, size=2).tolist()
        duplicate = frozenset(int(token) for token in kept + noise)
        records.append(duplicate)
        true_pairs.add((original_id, len(records) - 1))
    return records, true_pairs


def main() -> None:
    records, true_pairs = make_dirty_catalogue(num_clean=600, num_duplicates=60, seed=11)
    print(f"catalogue: {len(records)} records, {len(true_pairs)} planted near-duplicate pairs")

    predicate = SimilarityPredicate("braun_blanquet", 0.6)

    # Index with empirical frequencies (the real-data workflow of Section 9).
    index = SkewAdaptiveIndex.from_collection(records, b1=predicate.threshold, seed=3)
    result = similarity_self_join(index, records, predicate)

    reported = result.pair_set()
    planted_meeting_threshold = {
        pair for pair in true_pairs if predicate.accepts(records[pair[0]], records[pair[1]])
    }
    recovered = reported & planted_meeting_threshold
    print(
        f"skew-adaptive join: {result.num_pairs} pairs reported, "
        f"{len(recovered)}/{len(planted_meeting_threshold)} planted duplicates recovered, "
        f"{result.similarity_evaluations} exact verifications"
    )

    # Exact baseline for comparison (quadratic work).
    brute = BruteForceIndex(predicate)
    brute.build(records)
    exact = similarity_self_join(brute, records, predicate)
    print(
        f"brute-force join:   {exact.num_pairs} pairs reported, "
        f"{exact.similarity_evaluations} exact verifications "
        f"({exact.similarity_evaluations / max(result.similarity_evaluations, 1):.0f}x more work)"
    )

    missing = exact.pair_set() - reported
    print(f"pairs missed relative to the exact join: {len(missing)}")


if __name__ == "__main__":
    main()

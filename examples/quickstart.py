"""Quickstart: build a skew-adaptive index and answer similarity queries.

The scenario: vectors are drawn from a known skewed product distribution
(a handful of frequent items plus a long tail of rare ones), and we want to
answer two kinds of queries:

* correlated queries (Theorem 1) — the query is a noisy copy of some stored
  vector and we want that vector back;
* adversarial queries (Theorem 2) — any query, and we want *some* stored
  vector with Braun-Blanquet similarity at least ``b1``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorrelatedIndex,
    CorrelatedIndexConfig,
    ItemDistribution,
    SkewAdaptiveIndex,
    braun_blanquet,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A skewed universe: 50 frequent items and 2000 rare ones.
    probabilities = np.concatenate([np.full(50, 0.25), np.full(2000, 0.005)])
    distribution = ItemDistribution(probabilities)
    print(f"distribution: {distribution}")

    # Sample a dataset of 600 sparse vectors.
    dataset = distribution.sample_many(600, rng)
    dataset = [vector if vector else frozenset({0}) for vector in dataset]
    print(f"dataset: {len(dataset)} vectors, average size {np.mean([len(v) for v in dataset]):.1f}")

    # ------------------------------------------------------------------ #
    # Correlated queries (Theorem 1)
    # ------------------------------------------------------------------ #
    alpha = 0.7
    correlated_index = CorrelatedIndex(
        distribution, config=CorrelatedIndexConfig(alpha=alpha, repetitions=6, seed=1)
    )
    build_stats = correlated_index.build(dataset)
    print(
        f"\ncorrelated index built: {build_stats.total_filters} filters over "
        f"{build_stats.repetitions} repetitions"
    )

    hits = 0
    total_candidates = 0
    num_queries = 25
    for target in range(num_queries):
        query = distribution.sample_correlated(dataset[target], alpha, rng)
        result, stats = correlated_index.query(query)
        total_candidates += stats.candidates_examined
        if result == target:
            hits += 1
    print(
        f"correlated queries: {hits}/{num_queries} recovered the planted vector, "
        f"{total_candidates / num_queries:.1f} candidates examined per query "
        f"(vs {len(dataset)} for a linear scan)"
    )

    # ------------------------------------------------------------------ #
    # Adversarial queries (Theorem 2)
    # ------------------------------------------------------------------ #
    b1 = 0.5
    adversarial_index = SkewAdaptiveIndex(distribution, b1=b1, seed=2)
    adversarial_index.build(dataset)

    query = dataset[3]  # any query set works; here an exact copy of a stored vector
    result, stats = adversarial_index.query(query)
    similarity = braun_blanquet(adversarial_index.get_vector(result), query) if result is not None else 0.0
    print(
        f"\nadversarial query: returned vector {result} with similarity {similarity:.2f} "
        f"(threshold {b1}), {stats.candidates_examined} candidates examined"
    )


if __name__ == "__main__":
    main()

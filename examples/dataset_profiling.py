"""Dataset profiling: how skewed is your data, and what ρ does that buy?

Section 8 of the paper profiles the Mann et al. benchmark datasets to argue
that real data is heavily skewed (Figure 2) and close enough to item
independence (Table 1) for the model to be informative.  This example runs
the same analyses on synthetic stand-ins for a few of those datasets and then
answers the question a practitioner actually cares about: given the measured
frequency profile, what query exponent would the skew-adaptive structure
achieve, versus Chosen Path and prefix filtering?

Run with::

    python examples/dataset_profiling.py
"""

from __future__ import annotations

import numpy as np

from repro.data.analysis import frequency_profile, independence_ratio, skew_summary
from repro.data.generators import generate_benchmark_like
from repro.evaluation.reporting import format_table
from repro.theory.comparison import compare_methods

DATASETS = ["DBLP", "KOSARAK", "NETFLIX", "SPOTIFY"]
ALPHA = 2.0 / 3.0


def main() -> None:
    skew_rows = []
    rho_rows = []
    for name in DATASETS:
        collection = generate_benchmark_like(name, scale=0.25, seed=0)
        summary = skew_summary(collection)
        pair_ratio = independence_ratio(collection, subset_size=2, num_samples=1200, seed=0)
        profile = frequency_profile(collection, name=name)

        skew_rows.append(
            {
                "dataset": name,
                "sets": len(collection),
                "universe": collection.dimension,
                "avg size": round(collection.average_size(), 1),
                "gini": round(summary.gini, 2),
                "zipf exponent": round(summary.zipf_exponent, 2),
                "pair dependence ratio": round(pair_ratio, 2),
                "head y": round(float(profile.normalized_log_frequency[0]), 2),
                "tail y": round(float(profile.normalized_log_frequency[-1]), 2),
            }
        )

        # What does this skew buy at query time?  Feed the empirical
        # frequencies into the analytic comparison of Section 7.2.
        frequencies = np.clip(collection.item_frequencies(), 1e-6, 0.5)
        comparison = compare_methods(frequencies, ALPHA, num_vectors=len(collection))
        rho_rows.append(
            {
                "dataset": name,
                "ours (rho)": round(comparison.skew_adaptive_rho, 3),
                "chosen_path (rho)": round(comparison.chosen_path_rho, 3),
                "prefix_filter exponent": round(comparison.prefix_filter_exponent, 3),
                "gap vs chosen_path": round(comparison.improvement_over_chosen_path, 3),
            }
        )

    print(format_table(skew_rows, title="Skew and dependence profile (Section 8 analyses)"))
    print()
    print(
        format_table(
            rho_rows,
            title=(
                "Predicted query exponents on the measured frequency profiles "
                f"(alpha = {ALPHA:.2f}); lower is better"
            ),
        )
    )


if __name__ == "__main__":
    main()

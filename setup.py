"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that the
package can also be installed in environments where PEP 517 build isolation
is unavailable (e.g. offline machines without the ``wheel`` package), via
``pip install -e . --no-use-pep517 --no-build-isolation`` or
``python setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Skew-adaptive set similarity search "
        "(reproduction of McCauley, Mikkelsen, Pagh, PODS 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)

"""Property-based batch/single equivalence (hypothesis).

Random universes, random datasets, random queries: the batched execution
path must return exactly what the single-query loop returns, at every layer
(path generation, full engine queries, candidate enumeration).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import FilterEngine
from repro.core.paths import PathGenerator, default_max_depth
from repro.core.thresholds import AdversarialThreshold
from repro.hashing.pairwise import PathHasher

DIMENSION = 48

item_sets = st.frozensets(
    st.integers(min_value=0, max_value=DIMENSION - 1), min_size=0, max_size=14
)
# Spans both generate_batch paths: <= 8 vectors ride the tuple-frontier
# fast path, larger batches take the CSR kernel pipeline (see paths.py).
set_lists = st.lists(item_sets, min_size=1, max_size=12)
probability_arrays = st.lists(
    st.floats(min_value=0.01, max_value=0.5), min_size=DIMENSION, max_size=DIMENSION
).map(lambda values: np.asarray(values))


@given(probability_arrays, set_lists, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_generate_batch_equals_generate(probabilities, vectors, seed):
    generator = PathGenerator(
        probabilities,
        PathHasher(seed),
        stop_product=1.0 / 64.0,
        max_depth=default_max_depth(64, float(probabilities.max())),
        max_paths=200,
    )
    policy = AdversarialThreshold(0.5)
    sorted_vectors = [sorted(vector) for vector in vectors]
    bounds = [policy.bind(members) for members in sorted_vectors]
    batch = generator.generate_batch(sorted_vectors, bounds)
    for members, bound, batched in zip(sorted_vectors, bounds, batch):
        single = generator.generate(members, bound)
        assert single.paths == batched.paths
        assert single.truncated == batched.truncated
        assert single.expansions == batched.expansions


@given(
    st.lists(item_sets, min_size=2, max_size=12),
    st.lists(item_sets, min_size=1, max_size=10),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["first", "best"]),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_batch_equals_loop(dataset, queries, seed, mode):
    probabilities = np.full(DIMENSION, 0.12)
    engine = FilterEngine(
        probabilities,
        AdversarialThreshold(0.5),
        acceptance_threshold=0.5,
        num_vectors_hint=max(len(dataset), 1),
        repetitions=3,
        seed=seed,
    )
    engine.build(dataset)
    expected_ids = [engine.query(query, mode=mode)[0] for query in queries]
    batched_ids, _stats = engine.query_batch(queries, mode=mode, batch_size=4)
    assert batched_ids == expected_ids
    expected_candidates = [engine.query_candidates(query)[0] for query in queries]
    batched_candidates, _cstats = engine.query_candidates_batch(queries, batch_size=4)
    assert batched_candidates == expected_candidates

"""Property test: a loaded index is indistinguishable from the saved one.

For every index kind the persistence layer supports, build over a dataset,
apply dynamic updates (inserts and tombstones), run a mixed single/batch
query workload, save, reload, and assert that the loaded index reproduces
the original's results *and* work statistics bit-for-bit — the acceptance
bar of the binary persistence subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.join import similarity_join
from repro.core.serialization import load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.similarity.predicates import SimilarityPredicate
from repro.testing import rng_for


def _make_index(kind: str, distribution):
    if kind == "skew_adaptive":
        return SkewAdaptiveIndex(
            distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=5, seed=41)
        )
    if kind == "correlated":
        return CorrelatedIndex(
            distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=5, seed=42)
        )
    return ChosenPathIndex(
        dimension=distribution.dimension, b1=0.6, b2=0.3, repetitions=5, seed=43
    )


@pytest.mark.parametrize("kind", ["skew_adaptive", "correlated", "chosen_path"])
def test_save_load_equivalence_mixed_workload(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    rng = rng_for(f"tests:save-load:{kind}")
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:90])

    # Dynamic updates before saving: inserts extend the postings overlay,
    # removals populate the tombstone set.
    index.insert(skewed_dataset[100])
    index.insert(skewed_dataset[101])
    index.remove(3)
    index.remove(17)

    # A mixed workload: stored vectors, correlated perturbations and fresh
    # draws, queried both one-by-one and in batches.
    workload = list(skewed_dataset[:25])
    workload += [
        skewed_distribution.sample_correlated(skewed_dataset[i], 0.7, rng)
        for i in range(10)
    ]
    workload += [v if v else frozenset({0}) for v in skewed_distribution.sample_many(10, rng)]
    workload.append(frozenset())

    path = tmp_path / f"{kind}.bin"
    save_index(index, path)
    loaded = load_index(path)

    assert type(loaded) is type(index)
    assert loaded.num_indexed == index.num_indexed
    assert loaded.build_stats.to_dict() == index.build_stats.to_dict()
    assert loaded.build_stats.repetitions == index.build_stats.repetitions

    # Single-query surface: identical results and identical work stats.
    for mode in ("first", "best"):
        for query in workload:
            original_result, original_stats = index.query(query, mode=mode)
            loaded_result, loaded_stats = loaded.query(query, mode=mode)
            assert loaded_result == original_result
            assert loaded_stats.to_dict() == original_stats.to_dict()

    # Candidate surface (the join primitive).
    for query in workload:
        original_candidates, original_stats = index.query_candidates(query)
        loaded_candidates, loaded_stats = loaded.query_candidates(query)
        assert loaded_candidates == original_candidates
        assert loaded_stats.to_dict() == original_stats.to_dict()

    # Batched surfaces: same results and same per-query work accounting.
    original_results, original_batch = index.query_batch(workload)
    loaded_results, loaded_batch = loaded.query_batch(workload)
    assert loaded_results == original_results
    assert [s.to_dict() for s in loaded_batch.per_query] == [
        s.to_dict() for s in original_batch.per_query
    ]

    original_sets, _ = index.query_candidates_batch(workload)
    loaded_sets, _ = loaded.query_candidates_batch(workload)
    assert loaded_sets == original_sets

    # Tombstones survived: removed ids never reappear on any surface.
    flattened = set().union(*loaded_sets) if loaded_sets else set()
    assert 3 not in flattened and 17 not in flattened

    # The similarity join (a consumer of the batch surface) agrees too.
    predicate = SimilarityPredicate("braun_blanquet", 0.5)
    original_join = similarity_join(index, skewed_dataset[:20], predicate)
    loaded_join = similarity_join(loaded, skewed_dataset[:20], predicate)
    assert loaded_join.pair_set() == original_join.pair_set()


@pytest.mark.parametrize("kind", ["skew_adaptive", "correlated"])
def test_double_round_trip_is_stable(kind, skewed_distribution, skewed_dataset, tmp_path):
    """save → load → save reproduces every stored byte exactly (canonical
    format: nothing drifts through a round trip), for both formats."""
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:60])
    first = tmp_path / "first.v3"
    second = tmp_path / "second.v3"
    save_index(index, first)
    save_index(load_index(first), second)
    names_a = sorted(entry.name for entry in first.iterdir())
    names_b = sorted(entry.name for entry in second.iterdir())
    assert names_a == names_b
    for name in names_a:
        assert (first / name).read_bytes() == (second / name).read_bytes(), name

    first_v2 = tmp_path / "first.bin"
    second_v2 = tmp_path / "second.bin"
    v2_config = PersistenceConfig(format_version=2)
    save_index(index, first_v2, config=v2_config)
    save_index(load_index(first_v2), second_v2, config=v2_config)
    with np.load(first_v2, allow_pickle=False) as container_a, np.load(
        second_v2, allow_pickle=False
    ) as container_b:
        assert sorted(container_a.files) == sorted(container_b.files)
        for name in container_a.files:
            array_a, array_b = container_a[name], container_b[name]
            assert array_a.dtype == array_b.dtype, name
            assert np.array_equal(array_a, array_b), name
    loaded = load_index(second)
    rng = np.random.default_rng(9)
    for target in range(10):
        query = skewed_distribution.sample_correlated(skewed_dataset[target], 0.7, rng)
        assert loaded.query(query)[0] == index.query(query)[0]

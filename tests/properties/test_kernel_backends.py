"""Cross-backend kernel equivalence: ``REPRO_KERNELS=numba|python``.

The hot-path kernels (``repro.core.kernels``) promise bit-identical results
across their backends: whatever ``get_impl()`` resolves to, every query
surface must return the same ids and work counters, and every build must
produce the same compacted slot layout.  This suite sweeps the backend
environment switch over build/compact plus the five public query surfaces
(single query, single candidates, batched queries, batched candidates,
similarity join), comparing each backend's results and kernel counter
totals against the pure-python reference.

The numba leg skips itself when numba is not installed (CI runs a
dedicated no-numba matrix leg on exactly that configuration); the dispatch
error contract — ``REPRO_KERNELS=numba`` without numba raises, unknown
values raise — is covered unconditionally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.join import similarity_join
from repro.core.kernels import (
    COUNTER_NAMES,
    KERNELS_ENV_VAR,
    available_backends,
    get_impl,
    new_counters,
)
from repro.core.kernels._contract import (
    CHAIN_PROBES,
    DEDUPE_HITS,
    KEYS_FOLDED,
    MERGE_ROWS,
    PATHS_EXTENDED,
)
from repro.core.paths import PathGenerator, default_max_depth
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.thresholds import AdversarialThreshold
from repro.hashing.pairwise import PathHasher
from repro.similarity.predicates import SimilarityPredicate
from repro.testing import rng_for

BACKENDS = ("python", "numba")


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Each available kernel backend, with ``REPRO_KERNELS`` pinned to it."""
    name = request.param
    if name not in available_backends():
        pytest.skip(f"kernel backend {name!r} is not installed")
    monkeypatch.setenv(KERNELS_ENV_VAR, name)
    return name


def _workload(distribution, dataset, rng):
    queries = list(dataset[:12])
    queries += [
        distribution.sample_correlated(dataset[i], 0.7, rng) for i in range(6)
    ]
    dimension = distribution.dimension
    queries += [frozenset(rng.integers(0, dimension, size=7).tolist()) for _ in range(6)]
    queries += [frozenset(), dataset[0]]
    return queries


def _build_index(distribution, dataset):
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=17)
    )
    build_stats = index.build(dataset)
    return index, build_stats


def _all_surfaces(index, queries, probes, predicate):
    """Every public query surface's ids, stats dicts and kernel counters."""
    single = [index.query(query) for query in queries]
    candidates = [index.query_candidates(query) for query in queries]
    batched_ids, batched_stats = index.query_batch(queries, batch_size=5)
    cand_batched, cand_stats = index.query_candidates_batch(queries, batch_size=5)
    join = similarity_join(index, probes, predicate, batch_size=7)
    return {
        "single_ids": [result for result, _stats in single],
        "single_stats": [stats.to_dict() for _result, stats in single],
        "candidates": [found for found, _stats in candidates],
        "candidate_kernels": [stats.kernel.to_dict() for _found, stats in candidates],
        "batched_ids": batched_ids,
        "batched_kernel": batched_stats.kernel.to_dict(),
        "candidates_batched": cand_batched,
        "candidates_batched_kernel": cand_stats.kernel.to_dict(),
        "join": sorted(join.pairs),
    }


@pytest.fixture(scope="module")
def python_reference(skewed_distribution, skewed_dataset):
    """Build + query results computed on the forced pure-python backend."""
    rng = rng_for("tests:skewed-dataset")
    queries = _workload(skewed_distribution, skewed_dataset, rng)
    probes = skewed_dataset[:10] + [frozenset()]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)
    monkeypatch = pytest.MonkeyPatch()
    monkeypatch.setenv(KERNELS_ENV_VAR, "python")
    try:
        index, build_stats = _build_index(skewed_distribution, skewed_dataset)
        surfaces = _all_surfaces(index, queries, probes, predicate)
    finally:
        monkeypatch.undo()
    return {
        "queries": queries,
        "probes": probes,
        "predicate": predicate,
        "build_kernel": build_stats.kernel.to_dict(),
        "surfaces": surfaces,
    }


def test_backend_equals_python_reference(
    backend, python_reference, skewed_distribution, skewed_dataset
):
    """Build + all five query surfaces are bit-identical across backends."""
    index, build_stats = _build_index(skewed_distribution, skewed_dataset)
    assert build_stats.kernel.to_dict() == python_reference["build_kernel"]
    surfaces = _all_surfaces(
        index,
        python_reference["queries"],
        python_reference["probes"],
        python_reference["predicate"],
    )
    assert surfaces == python_reference["surfaces"]


def test_small_and_large_batches_agree(backend, skewed_distribution, skewed_dataset):
    """The small-batch fast path matches the CSR kernel pipeline exactly.

    ``PathGenerator.generate_batch`` routes batches of at most
    ``_SMALL_BATCH_MAX`` vectors through a tuple-frontier fast path; feeding
    the same vectors one at a time (fast path) and as one large batch
    (kernel pipeline) must produce identical paths, flags and counter
    totals.
    """
    from repro.core.paths import _SMALL_BATCH_MAX

    probabilities = skewed_distribution.probabilities
    generator = PathGenerator(
        probabilities,
        PathHasher(23),
        stop_product=1.0 / 64.0,
        max_depth=default_max_depth(64, float(probabilities.max())),
        max_paths=120,
    )
    policy = AdversarialThreshold(0.5)
    vectors = [sorted(vector) for vector in skewed_dataset[: 4 * _SMALL_BATCH_MAX]]
    bounds = [policy.bind(members) for members in vectors]

    large_counters = new_counters()
    large = generator.generate_batch(vectors, bounds, counters=large_counters)
    assert len(vectors) > _SMALL_BATCH_MAX  # the batch above took the kernel path

    small_counters = new_counters()
    small = []
    for members, bound in zip(vectors, bounds):
        small.extend(
            generator.generate_batch([members], [bound], counters=small_counters)
        )

    for one, many in zip(small, large):
        assert one.paths == many.paths
        assert one.keys == many.keys
        assert one.truncated == many.truncated
        assert one.expansions == many.expansions
    assert small_counters.tolist() == large_counters.tolist()

    serial = [generator.generate(members, bound) for members, bound in zip(vectors, bounds)]
    for one, many in zip(serial, large):
        assert one.paths == many.paths
        assert one.truncated == many.truncated


def test_kernel_level_equivalence(backend):
    """Exercise each kernel callable directly and compare with pure numpy."""
    rng = rng_for("tests:skewed-dataset")
    active = get_impl()
    monkeypatch = pytest.MonkeyPatch()
    monkeypatch.setenv(KERNELS_ENV_VAR, "python")
    try:
        reference = get_impl()
    finally:
        monkeypatch.undo()

    ids = rng.integers(0, 50, size=200).astype(np.int64)
    labels = rng.integers(0, 8, size=200).astype(np.int64)
    counters_a, counters_b = new_counters(), new_counters()
    merged_a = active.merge_labeled(labels, ids, counters_a)
    merged_b = reference.merge_labeled(labels, ids, counters_b)
    assert [arr.tolist() for arr in merged_a] == [arr.tolist() for arr in merged_b]
    assert counters_a.tolist() == counters_b.tolist()
    assert counters_a[MERGE_ROWS] == ids.size
    assert counters_a[DEDUPE_HITS] == ids.size - merged_a[0].size

    values = rng.integers(0, 30, size=64).astype(np.int64)
    counters_a, counters_b = new_counters(), new_counters()
    assert (
        active.sorted_unique(values, counters_a).tolist()
        == reference.sorted_unique(values, counters_b).tolist()
    )
    ordered_a = active.ordered_unique(values, counters_a)
    ordered_b = reference.ordered_unique(values, counters_b)
    assert [arr.tolist() for arr in ordered_a] == [arr.tolist() for arr in ordered_b]
    assert counters_a.tolist() == counters_b.tolist()


def test_counter_names_cover_contract():
    assert len(COUNTER_NAMES) == 5
    assert COUNTER_NAMES[PATHS_EXTENDED] == "paths_extended"
    assert COUNTER_NAMES[KEYS_FOLDED] == "keys_folded"
    assert COUNTER_NAMES[CHAIN_PROBES] == "chain_probes"
    assert COUNTER_NAMES[MERGE_ROWS] == "merge_rows"
    assert COUNTER_NAMES[DEDUPE_HITS] == "dedupe_hits"


def test_requesting_missing_numba_raises(monkeypatch):
    if "numba" in available_backends():
        pytest.skip("numba is installed; the missing-backend error cannot fire")
    monkeypatch.setenv(KERNELS_ENV_VAR, "numba")
    with pytest.raises(RuntimeError, match="numba"):
        get_impl()


def test_unknown_backend_value_raises(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV_VAR, "fortran")
    with pytest.raises(ValueError, match="REPRO_KERNELS"):
        get_impl()

"""Property-based tests (hypothesis) for the core data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.inverted_index import InvertedFilterIndex
from repro.core.paths import PathGenerator
from repro.core.thresholds import AdversarialThreshold, CorrelatedThreshold
from repro.data.distributions import ItemDistribution
from repro.hashing.pairwise import PathHasher
from repro.similarity.measures import braun_blanquet
from repro.theory.rho import solve_adversarial_rho, solve_correlated_rho

DIMENSION = 60

probability_arrays = st.lists(
    st.floats(min_value=0.001, max_value=0.5), min_size=5, max_size=DIMENSION
).map(lambda values: np.asarray(values))

item_subsets = st.frozensets(st.integers(min_value=0, max_value=DIMENSION - 1), min_size=1, max_size=25)


@given(probability_arrays, st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=60, deadline=None)
def test_adversarial_rho_within_unit_interval_and_feasible(probabilities, b1):
    """The adversarial exponent is non-negative, satisfies its inequality and
    is at most 1 whenever the search is non-trivial (b1 above the mean
    probability, i.e. the sought similarity exceeds the background level)."""
    rho = solve_adversarial_rho(probabilities, b1)
    assert rho >= 0.0
    if rho > 0.0:
        assert float(np.sum(probabilities**rho)) <= b1 * probabilities.size + 1e-6
    if b1 >= float(probabilities.mean()):
        assert rho <= 1.0 + 1e-9


@given(probability_arrays, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_correlated_rho_within_unit_interval_and_solves_equation(probabilities, alpha):
    rho = solve_correlated_rho(probabilities, alpha)
    assert 0.0 <= rho <= 1.0
    conditional = probabilities * (1.0 - alpha) + alpha
    lhs = float(np.sum(probabilities ** (1.0 + rho) / conditional))
    rhs = float(probabilities.sum())
    assert abs(lhs - rhs) <= max(1e-6 * rhs, 1e-9)


@given(probability_arrays, st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_correlated_rho_never_exceeds_balanced_worst_item(probabilities, alpha):
    """The skew-adaptive exponent is at most the exponent of the most
    frequent item treated as a uniform profile (skew can only help)."""
    worst = float(probabilities.max())
    rho = solve_correlated_rho(probabilities, alpha)
    worst_rho = solve_correlated_rho(np.full(probabilities.size, worst), alpha)
    assert rho <= worst_rho + 1e-9


@given(item_subsets, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_paths_are_subsets_without_repeats(items, seed):
    """Generated filters only contain vector items, each at most once."""
    probabilities = np.full(DIMENSION, 0.2)
    generator = PathGenerator(
        probabilities, PathHasher(seed), stop_product=1.0 / 100, max_depth=10
    )
    threshold = AdversarialThreshold(0.5).bind(sorted(items))
    result = generator.generate(sorted(items), threshold)
    for path in result.paths:
        assert set(path).issubset(items)
        assert len(path) == len(set(path))


@given(item_subsets, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_path_generation_deterministic(items, seed):
    probabilities = np.full(DIMENSION, 0.2)

    def generate():
        generator = PathGenerator(
            probabilities, PathHasher(seed), stop_product=1.0 / 100, max_depth=10
        )
        threshold = CorrelatedThreshold(probabilities, 0.6, 100).bind(sorted(items))
        return generator.generate(sorted(items), threshold).paths

    assert generate() == generate()


@given(
    st.lists(
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=5),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_inverted_index_total_entries_invariant(filters_per_vector):
    """total_entries always equals the sum of posting-list sizes."""
    index = InvertedFilterIndex()
    expected_total = 0
    for vector_id, paths in enumerate(filters_per_vector):
        expected_total += index.add(vector_id, paths)
    assert index.total_entries == expected_total
    assert sum(index.posting_sizes()) == expected_total


@given(
    st.integers(min_value=0, max_value=2**32),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_correlated_sampling_preserves_membership_probability(seed, probability, alpha):
    """q ~ D_alpha(x) marginally has Pr[q_i = 1] = p_i (spot check one item)."""
    distribution = ItemDistribution(np.full(30, probability))
    rng = np.random.default_rng(seed)
    trials = 300
    count = 0
    for _ in range(trials):
        x = distribution.sample(rng)
        q = distribution.sample_correlated(x, alpha, rng)
        if 0 in q:
            count += 1
    observed = count / trials
    assert abs(observed - probability) < 0.15


@given(item_subsets, item_subsets)
@settings(max_examples=80, deadline=None)
def test_braun_blanquet_never_below_acceptance_logic(x, q):
    """Helper invariant used by the engine: a candidate equal to the query
    always passes any threshold at most 1."""
    assert braun_blanquet(x, x) == 1.0
    assert 0.0 <= braun_blanquet(x, q) <= 1.0

"""Property tests: mmap-mode execution equals RAM-mode execution.

The tentpole contract of the sharded, mmap-backed persistence layer (format
v3): for all three filter-engine index kinds and all five public query
surfaces (single query, single candidates, batched queries, batched
candidates, similarity join), serving a saved index through lazily mapped
shards (``load_index(..., mode="mmap")``) returns results *bit-identical*
to loading it into RAM — including with tombstone removals overlaid after
the load, with per-shard probe fan-out enabled, across v2 → v3 conversion,
and for the single-query surfaces the work counters must match too (they
are the paper's work measure; only ``shards_probed``, the storage-layout
observable, may differ).

This suite supersedes the CSR-vs-set-reference equivalence suite that
guarded the PR 3 refactor: the ``use_csr_merge=False`` escape hatch and the
loop reference implementations have been removed after their soak release.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.join import similarity_join
from repro.core.serialization import load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.similarity.predicates import SimilarityPredicate
from repro.testing import rng_for

KINDS = ["skew_adaptive", "correlated", "chosen_path"]


def _make_index(kind: str, distribution):
    if kind == "skew_adaptive":
        return SkewAdaptiveIndex(
            distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=61)
        )
    if kind == "correlated":
        return CorrelatedIndex(
            distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=62)
        )
    return ChosenPathIndex(
        dimension=distribution.dimension, b1=0.6, b2=0.3, repetitions=4, seed=63
    )


def _workload(distribution, dataset, rng):
    queries = list(dataset[:20])
    queries += [
        distribution.sample_correlated(dataset[i], 0.7, rng) for i in range(8)
    ]
    dimension = distribution.dimension
    queries += [frozenset(rng.integers(0, dimension, size=7).tolist()) for _ in range(8)]
    queries += [frozenset(), dataset[0], dataset[0]]
    return queries


def _all_surfaces(index, queries, probes, predicate, shard_workers=None):
    """Results of every public query surface, as comparable structures."""
    single = [index.query(query)[0] for query in queries]
    best = [index.query(query, mode="best")[0] for query in queries]
    candidates = [index.query_candidates(query)[0] for query in queries]
    batched, _stats = index.query_batch(
        queries, batch_size=7, shard_workers=shard_workers
    )
    candidates_batched, _cstats = index.query_candidates_batch(
        queries, batch_size=7, shard_workers=shard_workers
    )
    arrays, _astats = index.query_candidates_arrays_batch(
        queries, batch_size=7, shard_workers=shard_workers
    )
    join = similarity_join(
        index, probes, predicate, batch_size=9, shard_workers=shard_workers
    )
    return {
        "single": single,
        "best": best,
        "candidates": candidates,
        "batched": batched,
        "candidates_batched": candidates_batched,
        "arrays": [array.tolist() for array in arrays],
        "join": sorted(join.pairs),
    }


@pytest.mark.parametrize("kind", KINDS)
def test_mmap_equals_ram_all_surfaces(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    rng = rng_for("tests:skewed-dataset")
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:80])
    path = tmp_path / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=5))
    queries = _workload(skewed_distribution, skewed_dataset, rng)
    probes = skewed_dataset[:15] + [frozenset()]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    ram = _all_surfaces(load_index(path), queries, probes, predicate)
    mmap = _all_surfaces(load_index(path, mode="mmap"), queries, probes, predicate)
    assert mmap == ram
    original = _all_surfaces(index, queries, probes, predicate)
    assert mmap == original
    # The arrays surface is the sorted view of the candidate sets.
    assert mmap["arrays"] == [sorted(c) for c in mmap["candidates_batched"]]


@pytest.mark.parametrize("kind", KINDS)
def test_mmap_equals_ram_with_shard_fanout(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    """Per-shard thread-pool fan-out is an execution strategy only: results
    with shard_workers > 1 are identical to the serial shard walk."""
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:70])
    path = tmp_path / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=6))
    queries = _workload(
        skewed_distribution, skewed_dataset, rng_for("tests:skewed-dataset")
    )
    probes = skewed_dataset[:12]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    serial = _all_surfaces(load_index(path, mode="mmap"), queries, probes, predicate)
    fanned = _all_surfaces(
        load_index(path, mode="mmap", shard_workers=3),
        queries,
        probes,
        predicate,
        shard_workers=3,
    )
    assert fanned == serial


@pytest.mark.parametrize("kind", KINDS)
def test_mmap_equals_ram_after_removals(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    """Tombstones overlay at the engine level, so removals applied *after*
    an mmap load must flow through every surface exactly as in RAM mode —
    the mapped store itself is never touched."""
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:70])
    path = tmp_path / "index.v3"
    save_index(index, path)
    ram = load_index(path)
    mapped = load_index(path, mode="mmap")
    for vector_id in (0, 9, 23):
        ram.remove(vector_id)
        mapped.remove(vector_id)
    queries = _workload(
        skewed_distribution, skewed_dataset, rng_for("tests:skewed-dataset")
    )
    probes = skewed_dataset[:12]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    ram_results = _all_surfaces(ram, queries, probes, predicate)
    mmap_results = _all_surfaces(mapped, queries, probes, predicate)
    assert mmap_results == ram_results
    removed = {0, 9, 23}
    for candidates in mmap_results["candidates"]:
        assert not candidates & removed


@pytest.mark.parametrize("kind", KINDS)
def test_mmap_equals_ram_after_v2_conversion(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    """v2 → v3 upgraded files answer identically in both load modes (the
    conversion round-trip is covered per surface in the serialization
    tests; this pins the property across all kinds)."""
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:60])
    index.insert(skewed_dataset[90])
    index.remove(2)
    v2_path = tmp_path / "index.bin"
    save_index(index, v2_path, config=PersistenceConfig(format_version=2))
    v3_path = tmp_path / "index.v3"
    save_index(load_index(v2_path), v3_path)
    queries = _workload(
        skewed_distribution, skewed_dataset, rng_for("tests:skewed-dataset")
    )
    probes = skewed_dataset[:10]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    original = _all_surfaces(index, queries, probes, predicate)
    ram = _all_surfaces(load_index(v3_path), queries, probes, predicate)
    mmap = _all_surfaces(load_index(v3_path, mode="mmap"), queries, probes, predicate)
    assert ram == original
    assert mmap == original


def test_single_query_stats_match_across_modes(
    skewed_distribution, skewed_dataset, tmp_path
):
    """The single-query surfaces must report the *same work counters* in
    both modes: ``candidates_examined`` is the paper's work measure and must
    not depend on the storage layout.  ``shards_probed`` is the one counter
    that legitimately reflects the layout and is excluded."""
    index = _make_index("skew_adaptive", skewed_distribution)
    index.build(skewed_dataset[:80])
    path = tmp_path / "index.v3"
    save_index(index, path)
    ram = load_index(path)
    mapped = load_index(path, mode="mmap")
    ram.remove(5)
    mapped.remove(5)
    rng = rng_for("tests:skewed-dataset")
    for query in _workload(skewed_distribution, skewed_dataset, rng):
        if not query:
            continue
        for mode in ("first", "best"):
            result_ram, stats_ram = ram.query(query, mode=mode)
            result_mmap, stats_mmap = mapped.query(query, mode=mode)
            assert result_ram == result_mmap
            ram_dict, mmap_dict = stats_ram.to_dict(), stats_mmap.to_dict()
            ram_dict.pop("shards_probed")
            mmap_dict.pop("shards_probed")
            assert ram_dict == mmap_dict
        candidates_ram, cstats_ram = ram.query_candidates(query)
        candidates_mmap, cstats_mmap = mapped.query_candidates(query)
        assert candidates_ram == candidates_mmap
        ram_dict, mmap_dict = cstats_ram.to_dict(), cstats_mmap.to_dict()
        ram_dict.pop("shards_probed")
        mmap_dict.pop("shards_probed")
        assert ram_dict == mmap_dict


def test_mmap_opens_shards_lazily(skewed_distribution, skewed_dataset, tmp_path):
    """A cold mmap load must not open any shard; a handful of queries must
    leave untouched shards unopened (the lazy-paging contract)."""
    index = _make_index("skew_adaptive", skewed_distribution)
    index.build(skewed_dataset[:80])
    path = tmp_path / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=16))
    mapped = load_index(path, mode="mmap")
    engine = mapped._engine  # noqa: SLF001 - white-box lazy-open check
    assert engine is not None
    assert all(store.shards_opened == 0 for store in engine.filter_indexes)
    mapped.query(skewed_dataset[0])
    opened = sum(store.shards_opened for store in engine.filter_indexes)
    total = sum(store.num_shards for store in engine.filter_indexes)
    assert 0 < opened < total


DIMENSION = 48

item_sets = st.frozensets(
    st.integers(min_value=0, max_value=DIMENSION - 1), min_size=0, max_size=14
)


@given(
    st.lists(item_sets, min_size=2, max_size=12),
    st.lists(item_sets, min_size=1, max_size=10),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["first", "best"]),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_mmap_equals_ram_random(tmp_path_factory, dataset, queries, seed, mode):
    """Hypothesis: random universes, datasets and queries — the mapped
    sharded execution and the RAM execution agree on every engine surface."""
    index = SkewAdaptiveIndex(
        np.full(DIMENSION, 0.12),
        config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=seed),
    )
    index.build(dataset)
    path = tmp_path_factory.mktemp("mode-equivalence") / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=4))
    ram = load_index(path)
    mapped = load_index(path, mode="mmap")

    expected_ids = [ram.query(query, mode=mode)[0] for query in queries]
    expected_candidates = [ram.query_candidates(query)[0] for query in queries]
    expected_batch, _ = ram.query_batch(queries, mode=mode, batch_size=4)
    assert [mapped.query(query, mode=mode)[0] for query in queries] == expected_ids
    assert [mapped.query_candidates(query)[0] for query in queries] == expected_candidates
    batched, _stats = mapped.query_batch(queries, mode=mode, batch_size=4)
    assert batched == expected_batch
    candidate_arrays, _astats = mapped.query_candidates_arrays_batch(queries, batch_size=4)
    assert [set(array.tolist()) for array in candidate_arrays] == expected_candidates

"""Property tests: the CSR-native pipeline equals the set-based reference.

The tentpole contract of the array-native query execution path: for all
three filter-engine index kinds and all five public query surfaces (single
query, single candidates, batched queries, batched candidates, similarity
join), executing through the CSR probe/merge pipeline returns results
*bit-identical* to the set-based reference kept behind
``use_csr_merge=False`` — including after post-build inserts, tombstone
removals, and a save/load round trip, and for the single-query surfaces the
work counters must match too (they are the paper's work measure).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.engine import FilterEngine
from repro.core.join import similarity_join
from repro.core.serialization import load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.thresholds import AdversarialThreshold
from repro.similarity.predicates import SimilarityPredicate
from repro.testing import rng_for

KINDS = ["skew_adaptive", "correlated", "chosen_path"]


def _make_index(kind: str, distribution):
    if kind == "skew_adaptive":
        return SkewAdaptiveIndex(
            distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=61)
        )
    if kind == "correlated":
        return CorrelatedIndex(
            distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=62)
        )
    return ChosenPathIndex(
        dimension=distribution.dimension, b1=0.6, b2=0.3, repetitions=4, seed=63
    )


def _workload(distribution, dataset, rng):
    queries = list(dataset[:20])
    queries += [
        distribution.sample_correlated(dataset[i], 0.7, rng) for i in range(8)
    ]
    dimension = distribution.dimension
    queries += [frozenset(rng.integers(0, dimension, size=7).tolist()) for _ in range(8)]
    queries += [frozenset(), dataset[0], dataset[0]]
    return queries


def _all_surfaces(index, queries, probes, predicate):
    """Results of every public query surface, as comparable structures."""
    single = [index.query(query)[0] for query in queries]
    best = [index.query(query, mode="best")[0] for query in queries]
    candidates = [index.query_candidates(query)[0] for query in queries]
    batched, _stats = index.query_batch(queries, batch_size=7)
    candidates_batched, _cstats = index.query_candidates_batch(queries, batch_size=7)
    arrays, _astats = index.query_candidates_arrays_batch(queries, batch_size=7)
    join = similarity_join(index, probes, predicate, batch_size=9)
    return {
        "single": single,
        "best": best,
        "candidates": candidates,
        "batched": batched,
        "candidates_batched": candidates_batched,
        "arrays": [array.tolist() for array in arrays],
        "join": sorted(join.pairs),
    }


@pytest.mark.parametrize("kind", KINDS)
def test_csr_equals_reference_all_surfaces(
    kind, skewed_distribution, skewed_dataset
):
    rng = rng_for("tests:skewed-dataset")
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:80])
    queries = _workload(skewed_distribution, skewed_dataset, rng)
    probes = skewed_dataset[:15] + [frozenset()]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    index.use_csr_merge = True
    csr = _all_surfaces(index, queries, probes, predicate)
    index.use_csr_merge = False
    reference = _all_surfaces(index, queries, probes, predicate)
    assert csr == reference
    # The arrays surface is the sorted view of the candidate sets.
    assert csr["arrays"] == [sorted(c) for c in csr["candidates_batched"]]


@pytest.mark.parametrize("kind", KINDS)
def test_csr_equals_reference_after_updates(
    kind, skewed_distribution, skewed_dataset
):
    """Post-build inserts (pending postings) and removals (tombstone masks)
    must flow through the CSR probe/merge identically to the reference."""
    rng = rng_for("tests:skewed-dataset")
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:70])
    inserted = [index.insert(skewed_dataset[100 + offset]) for offset in range(5)]
    for vector_id in (0, 9, inserted[1]):
        index.remove(vector_id)
    queries = _workload(skewed_distribution, skewed_dataset, rng)
    queries += [skewed_dataset[101]]  # hits a pending (post-build) posting
    probes = skewed_dataset[:12]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    index.use_csr_merge = True
    csr = _all_surfaces(index, queries, probes, predicate)
    index.use_csr_merge = False
    reference = _all_surfaces(index, queries, probes, predicate)
    assert csr == reference
    removed = {0, 9, inserted[1]}
    for candidates in csr["candidates"]:
        assert not candidates & removed


@pytest.mark.parametrize("kind", KINDS)
def test_csr_equals_reference_after_save_load(
    kind, skewed_distribution, skewed_dataset, tmp_path
):
    index = _make_index(kind, skewed_distribution)
    index.build(skewed_dataset[:60])
    index.insert(skewed_dataset[90])
    index.remove(2)
    path = tmp_path / "index.bin"
    save_index(index, path)
    loaded = load_index(path)
    queries = _workload(
        skewed_distribution, skewed_dataset, rng_for("tests:skewed-dataset")
    )
    probes = skewed_dataset[:10]
    predicate = SimilarityPredicate("braun_blanquet", 0.4)

    loaded.use_csr_merge = True
    csr = _all_surfaces(loaded, queries, probes, predicate)
    loaded.use_csr_merge = False
    reference = _all_surfaces(loaded, queries, probes, predicate)
    assert csr == reference
    index.use_csr_merge = True
    original = _all_surfaces(index, queries, probes, predicate)
    assert csr == original


def test_single_query_stats_match_reference(skewed_distribution, skewed_dataset):
    """The single-query surfaces must reproduce the reference's *work
    counters* exactly, not just its results: ``candidates_examined`` is the
    paper's work measure and must not depend on the execution strategy."""
    index = _make_index("skew_adaptive", skewed_distribution)
    index.build(skewed_dataset[:80])
    index.remove(5)
    rng = rng_for("tests:skewed-dataset")
    for query in _workload(skewed_distribution, skewed_dataset, rng):
        if not query:
            continue
        for mode in ("first", "best"):
            index.use_csr_merge = True
            result_csr, stats_csr = index.query(query, mode=mode)
            index.use_csr_merge = False
            result_ref, stats_ref = index.query(query, mode=mode)
            assert result_csr == result_ref
            assert stats_csr == stats_ref
        index.use_csr_merge = True
        candidates_csr, cstats_csr = index.query_candidates(query)
        index.use_csr_merge = False
        candidates_ref, cstats_ref = index.query_candidates(query)
        assert candidates_csr == candidates_ref
        assert cstats_csr == cstats_ref


DIMENSION = 48

item_sets = st.frozensets(
    st.integers(min_value=0, max_value=DIMENSION - 1), min_size=0, max_size=14
)


@given(
    st.lists(item_sets, min_size=2, max_size=12),
    st.lists(item_sets, min_size=1, max_size=10),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["first", "best"]),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_csr_equals_reference_random(dataset, queries, seed, mode):
    """Hypothesis: random universes, datasets and queries — the CSR pipeline
    and the set-based reference agree on every engine surface."""
    probabilities = np.full(DIMENSION, 0.12)
    engine = FilterEngine(
        probabilities,
        AdversarialThreshold(0.5),
        acceptance_threshold=0.5,
        num_vectors_hint=max(len(dataset), 1),
        repetitions=3,
        seed=seed,
    )
    engine.build(dataset)
    engine.use_csr_merge = False
    expected_ids = [engine.query(query, mode=mode)[0] for query in queries]
    expected_candidates = [engine.query_candidates(query)[0] for query in queries]
    expected_batch, _ = engine.query_batch(queries, mode=mode, batch_size=4)
    engine.use_csr_merge = True
    assert [engine.query(query, mode=mode)[0] for query in queries] == expected_ids
    assert [engine.query_candidates(query)[0] for query in queries] == expected_candidates
    batched, _stats = engine.query_batch(queries, mode=mode, batch_size=4)
    assert batched == expected_batch
    candidate_arrays, _astats = engine.query_candidates_arrays_batch(queries, batch_size=4)
    assert [set(array.tolist()) for array in candidate_arrays] == expected_candidates

"""Tests for parameter sweep helpers."""

from __future__ import annotations

import pytest

from repro.evaluation.sweeps import (
    dataset_size_sweep,
    geometric_grid,
    linear_grid,
    parameter_product,
    probability_sweep,
    sweep_results_to_rows,
)


class TestGrids:
    def test_linear_grid_endpoints(self):
        grid = linear_grid(0.0, 1.0, 5)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert len(grid) == 5

    def test_linear_grid_single_point(self):
        assert linear_grid(0.3, 0.9, 1) == [0.3]

    def test_linear_grid_invalid(self):
        with pytest.raises(ValueError):
            linear_grid(0.0, 1.0, 0)

    def test_geometric_grid_endpoints(self):
        grid = geometric_grid(1.0, 100.0, 3)
        assert grid[0] == pytest.approx(1.0)
        assert grid[1] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(100.0)

    def test_geometric_grid_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_grid(0.0, 1.0, 3)

    def test_geometric_grid_single_point(self):
        assert geometric_grid(2.0, 8.0, 1) == [2.0]


class TestParameterProduct:
    def test_cartesian_product(self):
        combinations = list(parameter_product({"a": [1, 2], "b": ["x", "y"]}))
        assert len(combinations) == 4
        assert {"a": 1, "b": "x"} in combinations
        assert {"a": 2, "b": "y"} in combinations

    def test_order_deterministic(self):
        first = list(parameter_product({"a": [1, 2], "b": [3, 4]}))
        second = list(parameter_product({"a": [1, 2], "b": [3, 4]}))
        assert first == second

    def test_empty_grid(self):
        assert list(parameter_product({})) == [{}]


class TestProbabilitySweep:
    def test_within_open_interval(self):
        for spacing in ("linear", "geometric"):
            grid = probability_sweep(0.0, 1.0, 10, spacing=spacing)
            assert all(0.0 < value < 1.0 for value in grid)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            probability_sweep(0.1, 0.5, 3, spacing="cubic")

    def test_empty_range(self):
        with pytest.raises(ValueError):
            probability_sweep(0.9, 0.1, 3)


class TestDatasetSizeSweep:
    def test_sorted_unique_integers(self):
        sizes = dataset_size_sweep(10, 10_000, 6)
        assert sizes == sorted(set(sizes))
        assert all(isinstance(size, int) for size in sizes)
        assert sizes[0] >= 10
        assert sizes[-1] == 10_000


class TestSweepResultsToRows:
    def test_merges_rows(self):
        parameters = [{"p": 0.1}, {"p": 0.2}]
        results = [{"rho": 0.5}, {"rho": 0.6}]
        rows = sweep_results_to_rows(parameters, results)
        assert rows == [{"p": 0.1, "rho": 0.5}, {"p": 0.2, "rho": 0.6}]

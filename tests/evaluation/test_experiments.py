"""Tests for the per-figure/table experiment modules."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.evaluation.experiments import (
    empirical,
    figure1,
    figure2,
    motivating,
    section7_adversarial,
    section7_correlated,
    table1,
)


class TestFigure1Experiment:
    def test_run_and_render(self):
        rows = figure1.run(p_values=np.linspace(0.1, 0.8, 8))
        assert len(rows) == 8
        text = figure1.render(rows)
        assert "Figure 1" in text
        assert "ours (red)" in text

    def test_headline_numbers(self):
        rows = figure1.run(p_values=np.linspace(0.1, 0.8, 8))
        headline = figure1.headline_numbers(rows)
        assert headline["fraction_better"] == 1.0
        assert headline["max_gap"] > 0.0
        assert headline["mean_gap"] > 0.0


class TestFigure2Experiment:
    def test_run_subset(self):
        profiles = figure2.run(dataset_names=["DBLP", "KOSARAK"], scale=0.1, num_points=20)
        assert set(profiles) == {"DBLP", "KOSARAK"}
        for profile in profiles.values():
            assert profile.normalized_log_frequency.size <= 21

    def test_render_both_axes(self):
        profiles = figure2.run(dataset_names=["DBLP"], scale=0.1, num_points=10)
        assert "DBLP" in figure2.render(profiles, axis="relative")
        assert "DBLP" in figure2.render(profiles, axis="log")
        with pytest.raises(ValueError):
            figure2.render(profiles, axis="bogus")

    def test_all_profiles_skewed(self):
        profiles = figure2.run(dataset_names=["AOL", "SPOTIFY", "NETFLIX"], scale=0.1)
        indicators = figure2.skew_indicators(profiles)
        assert len(indicators) == 3
        for row in indicators:
            assert row["drop"] > 0.2  # head frequency far above tail frequency


class TestTable1Experiment:
    def test_run_shape_and_paper_columns(self):
        rows = table1.run(dataset_names=["DBLP", "KOSARAK", "SPOTIFY"], scale=0.1, num_samples=400)
        assert len(rows) == 3
        for row in rows:
            assert row["paper |I|=2"] == table1.PAPER_TABLE1[str(row["dataset"]).upper()][0]

    def test_measured_ratios_at_least_one_ish(self):
        rows = table1.run(dataset_names=["DBLP", "SPOTIFY"], scale=0.1, num_samples=400)
        for row in rows:
            assert float(row["measured |I|=2"]) > 0.6

    def test_dependent_dataset_larger_ratio(self):
        rows = table1.run(dataset_names=["DBLP", "SPOTIFY"], scale=0.15, num_samples=800, seed=1)
        by_name = {str(row["dataset"]): row for row in rows}
        assert float(by_name["SPOTIFY"]["measured |I|=2"]) > float(
            by_name["DBLP"]["measured |I|=2"]
        )

    def test_render(self):
        rows = table1.run(dataset_names=["DBLP"], scale=0.1, num_samples=200)
        assert "Table 1" in table1.render(rows)


class TestSection7Adversarial:
    def test_matches_paper_constants(self):
        rows = section7_adversarial.run()
        by_b1 = {round(float(row["b1"]), 2): row for row in rows}
        assert float(by_b1[0.33]["ours"]) == pytest.approx(0.293, abs=0.01)
        assert float(by_b1[0.33]["chosen_path"]) == pytest.approx(0.528, abs=0.01)
        assert float(by_b1[0.67]["ours"]) < 0.05
        assert float(by_b1[0.67]["chosen_path"]) == pytest.approx(0.194, abs=0.01)

    def test_closed_form_check(self):
        check = section7_adversarial.closed_form_check()
        assert check["solver"] == pytest.approx(check["closed_form"], abs=5e-3)

    def test_query_profile_validation(self):
        with pytest.raises(ValueError):
            section7_adversarial.query_profile(1)
        with pytest.raises(ValueError):
            section7_adversarial.query_profile(100, query_size=7)

    def test_render(self):
        assert "Section 7.1" in section7_adversarial.render(section7_adversarial.run())


class TestSection7Correlated:
    def test_extreme_skew_rho_small(self):
        rows = section7_correlated.run(num_vectors=10**9)
        extreme = rows[0]
        assert float(extreme["ours"]) < 0.1
        assert float(extreme["prefix_filter_exponent"]) == pytest.approx(0.1, abs=0.01)

    def test_theta1_rows_beat_chosen_path(self):
        rows = section7_correlated.run(num_vectors=10**6)
        for row in rows[1:]:
            assert float(row["ours"]) < float(row["chosen_path"])
            assert float(row["prefix_filter_exponent"]) > 0.5

    def test_extreme_profile_validation(self):
        with pytest.raises(ValueError):
            section7_correlated.extreme_skew_profile(1)

    def test_extreme_profile_masses_balanced(self):
        probabilities, weights = section7_correlated.extreme_skew_profile(10**6, capital_c=10.0)
        frequent_mass = probabilities[0] * weights[0]
        rare_mass = probabilities[1] * weights[1]
        log_n = math.log(10**6)
        assert frequent_mass == pytest.approx(10.0 * log_n, rel=1e-6)
        assert rare_mass == pytest.approx(10.0 * log_n, rel=1e-6)

    def test_render(self):
        assert "Section 7.2" in section7_correlated.render(section7_correlated.run())


class TestMotivatingExperiment:
    def test_run_columns(self):
        rows = motivating.run(i1_values=(0.3, 0.5), dimension=1024)
        assert len(rows) == 2
        for row in rows:
            assert row["skew_adaptive_rho"] <= row["single_rho"] + 1e-9

    def test_render(self):
        assert "motivating" in motivating.render(motivating.run(i1_values=(0.4,), dimension=512))


class TestEmpiricalExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return empirical.run(num_vectors=120, num_queries=12, repetitions=3, seed=0)

    def test_all_methods_and_settings_present(self, rows):
        settings = {row["setting"] for row in rows}
        methods = {row["method"] for row in rows}
        assert settings == {"skewed", "uniform"}
        assert "correlated (ours)" in methods
        assert "chosen_path" in methods
        assert "brute_force" in methods

    def test_brute_force_perfect_recall(self, rows):
        for row in rows:
            if row["method"] == "brute_force":
                assert float(row["recall@1"]) >= 0.9

    def test_ours_reasonable_recall(self, rows):
        for row in rows:
            if row["method"] == "correlated (ours)":
                assert float(row["recall@1"]) >= 0.6

    def test_ours_fewer_candidates_than_brute_force_on_skewed(self, rows):
        by_key = {(row["setting"], row["method"]): row for row in rows}
        ours = by_key[("skewed", "correlated (ours)")]
        brute = by_key[("skewed", "brute_force")]
        assert float(ours["mean_candidates"]) < float(brute["mean_candidates"])

    def test_render(self, rows):
        assert "Empirical comparison" in empirical.render(rows)

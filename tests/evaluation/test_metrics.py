"""Tests for evaluation metrics."""

from __future__ import annotations

import pytest

from repro.core.stats import QueryStats
from repro.evaluation.metrics import (
    acceptable_rate,
    empirical_exponent,
    recall_at_one,
    success_rate,
    work_summary,
)


class TestRecallAtOne:
    def test_perfect_recall(self):
        assert recall_at_one([0, 1, 2], [0, 1, 2]) == 1.0

    def test_partial_recall(self):
        assert recall_at_one([0, None, 5], [0, 1, 2]) == pytest.approx(1.0 / 3.0)

    def test_empty(self):
        assert recall_at_one([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            recall_at_one([0], [0, 1])


class TestSuccessRate:
    def test_all_found(self):
        assert success_rate([1, 2, 3]) == 1.0

    def test_none_found(self):
        assert success_rate([None, None]) == 0.0

    def test_empty(self):
        assert success_rate([]) == 0.0

    def test_zero_id_counts_as_found(self):
        assert success_rate([0, None]) == 0.5


class TestAcceptableRate:
    def test_counts_acceptable_answers(self):
        returned = [0, 3, None]
        acceptable = [{0, 1}, {2}, {5}]
        assert acceptable_rate(returned, acceptable) == pytest.approx(1.0 / 3.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            acceptable_rate([0], [{0}, {1}])

    def test_empty(self):
        assert acceptable_rate([], []) == 0.0


class TestWorkSummary:
    def test_empty(self):
        summary = work_summary([])
        assert summary.mean_candidates == 0.0
        assert summary.max_total_work == 0.0

    def test_aggregation(self):
        stats = [
            QueryStats(filters_generated=1, candidates_examined=10),
            QueryStats(filters_generated=3, candidates_examined=30),
        ]
        summary = work_summary(stats)
        assert summary.mean_candidates == 20.0
        assert summary.median_candidates == 20.0
        assert summary.mean_filters == 2.0
        assert summary.mean_total_work == 22.0
        assert summary.max_total_work == 33.0

    def test_as_dict_keys(self):
        summary = work_summary([QueryStats(candidates_examined=5)])
        assert set(summary.as_dict()) == {
            "mean_candidates",
            "median_candidates",
            "p90_candidates",
            "mean_filters",
            "mean_total_work",
            "max_total_work",
        }


class TestEmpiricalExponent:
    def test_known_value(self):
        assert empirical_exponent(100.0, 10_000) == pytest.approx(0.5)

    def test_tiny_work_clamped_to_zero(self):
        assert empirical_exponent(0.5, 1000) == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            empirical_exponent(10.0, 1)

"""Tests for the text-table and series reporters."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_comparison_summary, format_series, format_table, indent


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"method": "ours", "rho": 0.25}], title="results")
        assert "results" in text
        assert "method" in text
        assert "ours" in text
        assert "0.250" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_precision(self):
        text = format_table([{"x": 0.123456}], precision=5)
        assert "0.12346" in text

    def test_row_count(self):
        text = format_table([{"a": i} for i in range(5)])
        # header + separator + 5 data rows
        assert len(text.splitlines()) == 7


class TestFormatSeries:
    def test_basic(self):
        text = format_series([0.1, 0.2], {"ours": [0.5, 0.6]}, x_label="p")
        assert "p" in text
        assert "ours" in text
        assert "0.500" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([0.1], {"ours": [0.5, 0.6]})

    def test_max_rows_subsampling(self):
        text = format_series(
            list(range(100)), {"y": list(range(100))}, max_rows=10
        )
        assert len(text.splitlines()) < 30

    def test_multiple_series_columns(self):
        text = format_series([1.0], {"a": [0.1], "b": [0.2]})
        header = text.splitlines()[0]
        assert "a" in header and "b" in header


class TestHelpers:
    def test_comparison_summary(self):
        text = format_comparison_summary([{"m": "x"}], title="cmp")
        assert text.startswith("cmp")

    def test_indent(self):
        assert indent("a\nb", prefix="> ") == "> a\n> b"

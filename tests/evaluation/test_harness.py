"""Tests for the workload runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceIndex
from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.evaluation.harness import QueryWorkload, compare_indexes, run_workload
from repro.similarity.predicates import SimilarityPredicate


@pytest.fixture(scope="module")
def planted_workload(skewed_distribution, skewed_dataset):
    rng = np.random.default_rng(21)
    queries = []
    expected = []
    for target in range(15):
        queries.append(
            skewed_distribution.sample_correlated(skewed_dataset[target], 0.7, rng)
        )
        expected.append(target)
    return QueryWorkload(queries=queries, expected_ids=expected)


class TestQueryWorkload:
    def test_normalises_queries(self):
        workload = QueryWorkload(queries=[[1, 2, 2], {3}])
        assert workload.queries[0] == frozenset({1, 2})
        assert len(workload) == 2

    def test_expected_ids_length_checked(self):
        with pytest.raises(ValueError):
            QueryWorkload(queries=[{1}], expected_ids=[0, 1])

    def test_acceptable_ids_length_checked(self):
        with pytest.raises(ValueError):
            QueryWorkload(queries=[{1}], acceptable_ids=[{0}, {1}])


class TestRunWorkload:
    def test_brute_force_perfect_recall(self, skewed_dataset, planted_workload):
        result = run_workload(
            lambda: BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.5)),
            skewed_dataset,
            planted_workload,
            method_name="brute",
            query_mode="best",
        )
        assert result.method == "brute"
        assert result.num_queries == len(planted_workload)
        assert result.recall is not None and result.recall >= 0.8
        assert result.success >= result.recall
        assert result.build_seconds >= 0.0
        assert result.query_seconds >= 0.0
        assert result.work is not None

    def test_correlated_index_good_recall(
        self, skewed_distribution, skewed_dataset, planted_workload
    ):
        result = run_workload(
            lambda: CorrelatedIndex(
                skewed_distribution,
                config=CorrelatedIndexConfig(alpha=0.7, repetitions=5, seed=2),
            ),
            skewed_dataset,
            planted_workload,
            method_name="ours",
        )
        assert result.recall is not None and result.recall >= 0.7
        assert result.total_stored_filters is not None and result.total_stored_filters > 0

    def test_as_row_keys(self, skewed_dataset, planted_workload):
        result = run_workload(
            lambda: BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.5)),
            skewed_dataset,
            planted_workload,
            method_name="brute",
        )
        row = result.as_row()
        assert {"method", "n", "queries", "build_s", "query_s", "success"} <= set(row)
        assert "recall@1" in row

    def test_acceptable_ids_scored(self, skewed_dataset):
        workload = QueryWorkload(
            queries=[skewed_dataset[0]], acceptable_ids=[{0}]
        )
        result = run_workload(
            lambda: BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.9)),
            skewed_dataset,
            workload,
            method_name="brute",
            query_mode="best",
        )
        assert result.acceptable is not None


class TestCompareIndexes:
    def test_runs_all_methods_in_order(self, skewed_distribution, skewed_dataset, planted_workload):
        factories = {
            "brute": lambda: BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.5)),
            "ours": lambda: CorrelatedIndex(
                skewed_distribution,
                config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=3),
            ),
        }
        results = compare_indexes(factories, skewed_dataset, planted_workload)
        assert [result.method for result in results] == ["brute", "ours"]
        assert all(result.num_indexed == len(skewed_dataset) for result in results)

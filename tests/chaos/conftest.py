"""Fixtures for the chaos suite.

The chaos tests drive the full ``engine → router → transport → worker``
stack through injected failures, so they get their own saved v3 index
(private — tests here open it with fault specs and damage breakers) plus
an mmap baseline for the bit-identity assertions after recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import pytest

from repro import SkewAdaptiveIndex, load_index, save_index
from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.dist import load_routed_index, shard_router_of
from repro.testing import rng_for

#: Shard count the chaos index is saved with.
NUM_SHARDS = 4

#: Worker count every routed load in this suite uses (worker 0 owns
#: shards 0-1, worker 1 owns shards 2-3).
NUM_WORKERS = 2


@dataclass
class ChaosIndex:
    """The saved index plus the traffic the chaos scenarios replay."""

    path: Path
    dataset: list[frozenset[int]]
    queries: list[frozenset[int]]


@pytest.fixture(scope="session")
def chaos_index(tmp_path_factory, skewed_distribution, skewed_dataset) -> ChaosIndex:
    index = SkewAdaptiveIndex(
        skewed_distribution,
        config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=11),
    )
    index.build(skewed_dataset)
    path = tmp_path_factory.mktemp("chaos") / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=NUM_SHARDS))
    rng = rng_for("tests:chaos-queries")
    sampled = skewed_distribution.sample_many(16, rng)
    queries = [query if query else frozenset({0}) for query in sampled]
    queries.extend(skewed_dataset[:12])
    return ChaosIndex(path=path, dataset=skewed_dataset, queries=queries)


@pytest.fixture(scope="session")
def chaos_mmap(chaos_index: ChaosIndex):
    """The healthy single-process baseline degraded results compare against."""
    return load_index(chaos_index.path, mode="mmap")


@pytest.fixture()
def routed_loader(chaos_index: ChaosIndex) -> Iterator[Callable]:
    """Load private routed views of the chaos index, fault spec optional."""
    loaded = []

    def load(fault_spec: str | None = None):
        index = load_routed_index(
            chaos_index.path,
            transport="inproc",
            shard_procs=NUM_WORKERS,
            fault_spec=fault_spec,
        )
        loaded.append(index)
        return index

    yield load
    for index in loaded:
        shard_router_of(index).close()

"""End-to-end chaos: the query service over a fault-injected routed index.

These drive the full ``service → batcher → engine → router → transport``
stack: degraded 200s with completeness annotations, strict 503s with
backoff-derived retry hints, deadline headers answering 504 without
blocking batch peers, and the breaker metric families on ``/metrics``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.config import IndexSpec, ServeConfig
from repro.serve.service import ApiError, QueryService

NUM_WORKERS = 2


def test_partial_requests_degrade_while_strict_requests_fail(chaos_index):
    async def scenario() -> None:
        spec = IndexSpec(
            name="default",
            path=str(chaos_index.path),
            shard_procs=NUM_WORKERS,
            fault_spec="drop:worker=0",
        )
        service = QueryService([spec], ServeConfig(batch_window_ms=0.0))
        await service.start()
        try:
            queries = [sorted(vector) for vector in chaos_index.dataset[:8]]

            response = await service.query_batch(
                {"queries": queries, "allow_partial": True}
            )
            assert response["completeness"] == pytest.approx(0.5)
            assert response["shards_missing"] == [0, 1]
            assert len(response["results"]) == len(queries)

            join_response = await service.similarity_join_endpoint(
                {"probes": queries, "allow_partial": True}
            )
            assert join_response["completeness"] == pytest.approx(0.5)
            assert join_response["shards_missing"] == [0, 1]

            # Strict requests still refuse to answer partially — with the
            # breaker's actual backoff as the retry hint, not a constant.
            with pytest.raises(ApiError) as excinfo:
                await service.query_batch({"queries": queries})
            assert excinfo.value.status == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1

            metrics = service.metrics_text()
            assert "repro_shard_breaker_state" in metrics
            assert "repro_shard_retries_total" in metrics
        finally:
            await service.close()

    asyncio.run(scenario())


def test_deadline_header_answers_504_without_blocking_peers(chaos_index):
    async def scenario() -> None:
        spec = IndexSpec(
            name="default", path=str(chaos_index.path), shard_procs=NUM_WORKERS
        )
        service = QueryService([spec], ServeConfig(batch_window_ms=0.0))
        await service.start()
        try:
            payload = {"query": sorted(chaos_index.dataset[0])}
            doomed = service.query(payload, {"x-repro-deadline-ms": "0.01"})
            healthy = service.query(dict(payload))
            results = await asyncio.gather(doomed, healthy, return_exceptions=True)
            assert isinstance(results[0], ApiError)
            assert results[0].status == 504
            assert "Retry-After" in results[0].headers
            assert isinstance(results[1], dict)
            assert results[1]["index"] == "default"

            with pytest.raises(ApiError) as excinfo:
                await service.query(payload, {"x-repro-deadline-ms": "soon"})
            assert excinfo.value.status == 400
        finally:
            await service.close()

    asyncio.run(scenario())


def test_config_default_deadline_applies_without_header(chaos_index):
    async def scenario() -> None:
        spec = IndexSpec(
            name="default", path=str(chaos_index.path), shard_procs=NUM_WORKERS
        )
        service = QueryService(
            [spec], ServeConfig(batch_window_ms=0.0, default_deadline_ms=0.01)
        )
        await service.start()
        try:
            payload = {"query": sorted(chaos_index.dataset[0])}
            with pytest.raises(ApiError) as excinfo:
                await service.query(payload)
            assert excinfo.value.status == 504
            # A generous header overrides the config default.
            response = await service.query(
                payload, {"x-repro-deadline-ms": "30000"}
            )
            assert response["index"] == "default"
        finally:
            await service.close()

    asyncio.run(scenario())

"""Breaker recovery back to bit-identity, and deadline aborts mid-fan-out."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.engine import DeadlineExceededError
from repro.dist import shard_router_of
from repro.dist.breaker import STATE_CLOSED, STATE_OPEN
from repro.dist.transport import ShardUnavailableError


def test_recovery_restores_bit_identity_on_all_surfaces(
    routed_loader, chaos_mmap, chaos_index
):
    index = routed_loader("drop:worker=0:count=2")
    router = shard_router_of(index)
    queries = chaos_index.queries

    with pytest.raises(ShardUnavailableError):
        index.query_batch(queries)
    assert router.breakers[0].state == STATE_OPEN

    # Sleep out each backoff; the admitted half-open probe either hits the
    # second injected drop (backoff doubles) or succeeds and closes the
    # breaker.  The schedule is finite, so this converges in two rounds.
    attempts = 0
    while router.breakers[0].state != STATE_CLOSED:
        attempts += 1
        assert attempts <= 5, "breaker never recovered"
        time.sleep(router.breakers[0].retry_after() + 0.02)
        try:
            index.query_batch(queries)
        except ShardUnavailableError:
            continue
    assert router.snapshot()["per_worker"][0]["retries"] >= 1

    # With the breaker closed again, every query surface answers
    # bit-identically to the single-process mmap baseline.
    expected_results, _ = chaos_mmap.query_batch(queries)
    results, _ = index.query_batch(queries)
    assert results == expected_results
    for query in queries[:6]:
        for mode in ("first", "best"):
            assert index.query(query, mode=mode)[0] == (
                chaos_mmap.query(query, mode=mode)[0]
            )
        assert index.query_candidates(query)[0] == (
            chaos_mmap.query_candidates(query)[0]
        )
    candidate_sets, _ = index.query_candidates_batch(queries)
    expected_sets, _ = chaos_mmap.query_candidates_batch(queries)
    assert candidate_sets == expected_sets
    arrays, _ = index.query_candidates_arrays_batch(queries)
    expected_arrays, _ = chaos_mmap.query_candidates_arrays_batch(queries)
    for expected, actual in zip(expected_arrays, arrays):
        assert np.array_equal(expected, actual)


def test_deadline_expiring_mid_fanout_aborts_and_is_counted(
    routed_loader, chaos_index
):
    # Worker 0 answers 0.2s late; a 50ms budget expires while the fan-out
    # is in flight, so the router aborts instead of waiting the delay out.
    index = routed_loader("delay:worker=0:seconds=0.2")
    router = shard_router_of(index)
    router.take_fanout_stats()  # drain
    with pytest.raises(DeadlineExceededError):
        index.query_batch(chaos_index.queries, deadline=time.time() + 0.05)
    fanout = router.take_fanout_stats()
    assert sum(fanout.aborts) >= 1
    # A deadline says nothing about worker health: the breaker stays closed.
    assert router.breakers[0].state == STATE_CLOSED


def test_expired_deadline_rejects_before_any_fanout(routed_loader, chaos_index):
    index = routed_loader()
    router = shard_router_of(index)
    router.take_fanout_stats()
    with pytest.raises(DeadlineExceededError):
        index.query_batch(chaos_index.queries, deadline=time.time() - 1.0)
    fanout = router.take_fanout_stats()
    assert sum(fanout.requests) == 0  # no worker was ever contacted

"""Degraded partial results under a permanently failing worker.

The ``allow_partial`` contract: with worker 0 down, a degraded fan-out
returns exactly the full results restricted to the live shards — no
more, no less — annotated with the missing shards and the completeness
ratio.  Strict requests keep failing, but with the breaker's actual
backoff as the retry hint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import shard_router_of
from repro.dist.breaker import STATE_OPEN
from repro.dist.transport import ShardUnavailableError
from repro.hashing.pairwise import fold_path

NUM_SHARDS = 4


def _probe_plan(chaos_mmap, queries):
    """Real (paths, keys) probe traffic, derived from the engine's filters."""
    paths = []
    for query in queries:
        paths.extend(chaos_mmap._engine.query_filters(query, 0))
    keys = np.asarray([fold_path(path) for path in paths], dtype=np.uint64)
    return paths, keys


def test_degraded_probes_are_full_probes_restricted_to_live_shards(
    routed_loader, chaos_mmap, chaos_index
):
    healthy = shard_router_of(routed_loader())
    degraded = shard_router_of(routed_loader("drop:worker=0"))
    paths, keys = _probe_plan(chaos_mmap, chaos_index.queries[:8])

    full_ids, full_offsets, route = healthy.probe_batch_routed(0, paths, keys)
    degraded.set_request_scope(allow_partial=True)
    try:
        ids, offsets, degraded_route = degraded.probe_batch_routed(0, paths, keys)
    finally:
        degraded.clear_request_scope()

    assert np.array_equal(degraded_route, route)
    dead = degraded._shard_to_worker[route] == 0
    assert dead.any() and (~dead).any()  # the plan spans both workers
    lengths = np.diff(offsets)
    full_lengths = np.diff(full_offsets)
    # Dead-worker probes answer zero postings; live probes answer exactly
    # what the healthy fan-out answers.
    assert not lengths[dead].any()
    assert np.array_equal(lengths[~dead], full_lengths[~dead])
    for probe in np.flatnonzero(~dead):
        assert np.array_equal(
            ids[offsets[probe] : offsets[probe + 1]],
            full_ids[full_offsets[probe] : full_offsets[probe + 1]],
        )

    fanout = degraded.take_fanout_stats()
    expected_missing = sorted({int(shard) for shard in route[dead]})
    assert fanout.shards_missing == expected_missing
    assert fanout.completeness == pytest.approx(
        1.0 - len(expected_missing) / NUM_SHARDS
    )


def test_partial_batch_is_annotated_and_subset_of_full(
    routed_loader, chaos_mmap, chaos_index
):
    degraded = routed_loader("drop:worker=0")
    expected_sets, _expected_stats = chaos_mmap.query_candidates_batch(
        chaos_index.queries
    )
    candidate_sets, stats = degraded.query_candidates_batch(
        chaos_index.queries, allow_partial=True
    )
    assert stats.fanout.shards_missing == [0, 1]  # worker 0 owns shards 0-1
    assert stats.fanout.completeness == pytest.approx(0.5)
    for partial, full in zip(candidate_sets, expected_sets):
        assert partial <= full


def test_strict_mode_fails_with_backoff_derived_retry_after(
    routed_loader, chaos_index
):
    index = routed_loader("drop:worker=0")
    with pytest.raises(ShardUnavailableError) as excinfo:
        index.query_batch(chaos_index.queries)
    assert excinfo.value.retry_after is not None
    assert excinfo.value.retry_after > 0.0
    # The breaker is now open: the next request fails fast on the breaker
    # itself instead of waiting on the known-bad worker again.
    router = shard_router_of(index)
    assert router.breakers[0].state == STATE_OPEN
    with pytest.raises(ShardUnavailableError, match="circuit breaker"):
        index.query_batch(chaos_index.queries)

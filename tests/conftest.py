"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds of vectors at most, few
repetitions) so that the whole suite runs in well under a minute; the
benchmark harness is where larger instances live.

All randomness is seeded through :mod:`repro.testing`, the deterministic
seed registry shared with ``benchmarks/conftest.py``, so test and benchmark
datasets stay reproducible from a single source of truth (override the base
with the ``REPRO_SEED_BASE`` environment variable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import ItemDistribution
from repro.data.families import two_block_probabilities, uniform_probabilities
from repro.testing import base_seed, rng_for


@pytest.fixture(scope="session")
def deterministic_seed() -> int:
    """The base seed every dataset fixture derives from (default 0)."""
    return base_seed()


@pytest.fixture(scope="session")
def skewed_distribution() -> ItemDistribution:
    """A small two-block skewed distribution (frequent block + rare tail)."""
    probabilities = np.concatenate(
        [
            two_block_probabilities(40, 0.30, 0.30 / 8.0),
            np.full(400, 0.02),
        ]
    )
    return ItemDistribution(probabilities)


@pytest.fixture(scope="session")
def uniform_distribution() -> ItemDistribution:
    """A no-skew distribution with comparable expected set size."""
    return ItemDistribution(uniform_probabilities(150, 0.10))


@pytest.fixture(scope="session")
def skewed_dataset(skewed_distribution: ItemDistribution) -> list[frozenset[int]]:
    """150 vectors sampled from the skewed distribution (deterministic)."""
    vectors = skewed_distribution.sample_many(150, rng_for("tests:skewed-dataset"))
    return [vector if vector else frozenset({0}) for vector in vectors]


@pytest.fixture(scope="session")
def uniform_dataset(uniform_distribution: ItemDistribution) -> list[frozenset[int]]:
    """150 vectors sampled from the uniform distribution (deterministic)."""
    vectors = uniform_distribution.sample_many(150, rng_for("tests:uniform-dataset"))
    return [vector if vector else frozenset({0}) for vector in vectors]

"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds of vectors at most, few
repetitions) so that the whole suite runs in well under a minute; the
benchmark harness is where larger instances live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import ItemDistribution
from repro.data.families import two_block_probabilities, uniform_probabilities


@pytest.fixture(scope="session")
def skewed_distribution() -> ItemDistribution:
    """A small two-block skewed distribution (frequent block + rare tail)."""
    probabilities = np.concatenate(
        [
            two_block_probabilities(40, 0.30, 0.30 / 8.0),
            np.full(400, 0.02),
        ]
    )
    return ItemDistribution(probabilities)


@pytest.fixture(scope="session")
def uniform_distribution() -> ItemDistribution:
    """A no-skew distribution with comparable expected set size."""
    return ItemDistribution(uniform_probabilities(150, 0.10))


@pytest.fixture(scope="session")
def skewed_dataset(skewed_distribution: ItemDistribution) -> list[frozenset[int]]:
    """150 vectors sampled from the skewed distribution (deterministic)."""
    rng = np.random.default_rng(12345)
    vectors = skewed_distribution.sample_many(150, rng)
    return [vector if vector else frozenset({0}) for vector in vectors]


@pytest.fixture(scope="session")
def uniform_dataset(uniform_distribution: ItemDistribution) -> list[frozenset[int]]:
    """150 vectors sampled from the uniform distribution (deterministic)."""
    rng = np.random.default_rng(54321)
    vectors = uniform_distribution.sample_many(150, rng)
    return [vector if vector else frozenset({0}) for vector in vectors]

"""Tests of the public API surface: exports exist, are documented, and stable."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.baselines",
    "repro.data",
    "repro.similarity",
    "repro.hashing",
    "repro.theory",
    "repro.evaluation",
]


class TestTopLevelExports:
    def test_version_present(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_key_classes_exported(self):
        for name in (
            "SkewAdaptiveIndex",
            "CorrelatedIndex",
            "ChosenPathIndex",
            "PrefixFilterIndex",
            "MinHashIndex",
            "BruteForceIndex",
            "ItemDistribution",
            "SetCollection",
            "SimilarityPredicate",
        ):
            assert name in repro.__all__

    def test_module_docstring(self):
        assert repro.__doc__ is not None
        assert "PODS 2018" in repro.__doc__ or "Set Similarity" in repro.__doc__


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable_with_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ is not None and module.__doc__.strip()

    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name} but it is missing"


class TestPublicDocstrings:
    """Every public class and function exported at the top level is documented."""

    def test_exported_objects_have_docstrings(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ is not None and obj.__doc__.strip(), f"{name} lacks a docstring"

    def test_index_classes_have_documented_query(self):
        for cls in (repro.SkewAdaptiveIndex, repro.CorrelatedIndex):
            assert cls.query.__doc__
            assert cls.build.__doc__

    def test_public_methods_of_item_distribution_documented(self):
        for name, member in inspect.getmembers(repro.ItemDistribution, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, f"ItemDistribution.{name} lacks a docstring"

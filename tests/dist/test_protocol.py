"""Wire-protocol unit tests: round trips, framing, corruption rejection."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.dist import protocol


def test_message_round_trip_preserves_meta_and_arrays():
    meta = {"kind": protocol.MESSAGE_PROBE, "repetition": 2, "status": protocol.STATUS_OK}
    arrays = {
        "keys": np.array([1, 2, 2**63], dtype=np.uint64),
        "items": np.array([[1, 2], [3, 4]], dtype=np.int64),
        "empty": np.empty(0, dtype=np.int64),
    }
    decoded_meta, decoded = protocol.decode_message(protocol.encode_message(meta, arrays))
    assert decoded_meta == meta
    assert set(decoded) == set(arrays)
    for name, array in arrays.items():
        assert decoded[name].dtype == array.dtype
        assert decoded[name].shape == array.shape
        assert np.array_equal(decoded[name], array)


def test_decoded_arrays_are_zero_copy_views():
    payload = protocol.encode_message({"a": 1}, {"xs": np.arange(8, dtype=np.int64)})
    _meta, arrays = protocol.decode_message(payload)
    assert arrays["xs"].base is not None  # a view over the payload, not a copy


def test_probe_request_and_response_round_trip():
    keys = np.array([7, 9], dtype=np.uint64)
    items = np.array([1, 2, 3], dtype=np.int64)
    offsets = np.array([0, 2, 3], dtype=np.int64)
    meta, arrays = protocol.decode_message(
        protocol.encode_probe_request(1, keys, items, offsets)
    )
    assert meta["kind"] == protocol.MESSAGE_PROBE
    assert meta["repetition"] == 1
    assert np.array_equal(arrays["keys"], keys)

    lengths = np.array([2, 0], dtype=np.int64)
    ids = np.array([4, 5], dtype=np.int64)
    meta, arrays = protocol.decode_message(protocol.encode_probe_response(lengths, ids))
    assert meta["status"] == protocol.STATUS_OK
    assert np.array_equal(arrays["lengths"], lengths)
    assert np.array_equal(arrays["ids"], ids)


def test_error_payload_round_trips_kind_and_message():
    meta, arrays = protocol.decode_message(
        protocol.encode_error(protocol.MESSAGE_PROBE, "boom")
    )
    assert meta["status"] == protocol.STATUS_ERROR
    assert meta["kind"] == protocol.MESSAGE_PROBE
    assert meta["error"] == "boom"
    assert arrays == {}


@pytest.mark.parametrize(
    "mutate",
    [
        lambda payload: b"XXXX" + payload[4:],  # wrong magic
        lambda payload: payload[:10],  # truncated header
        lambda payload: payload[:-3],  # truncated array bytes
        lambda payload: payload[:4] + struct.pack("<I", 2**30) + payload[8:],
    ],
    ids=["bad-magic", "short-header", "short-arrays", "huge-header-len"],
)
def test_corrupt_payloads_raise_protocol_error(mutate):
    payload = protocol.encode_message(
        {"type": protocol.MESSAGE_PROBE}, {"keys": np.arange(4, dtype=np.uint64)}
    )
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(mutate(payload))


def test_socket_framing_round_trip():
    left, right = socket.socketpair()
    try:
        payload = protocol.encode_message({"n": 3}, {"xs": np.arange(3, dtype=np.int64)})
        protocol.send_frame(left, payload)
        assert protocol.recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_recv_frame_raises_connection_closed_on_eof():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_frame(right)
    finally:
        right.close()

"""Wire-protocol unit tests: round trips, framing, corruption rejection."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.dist import protocol


def test_message_round_trip_preserves_meta_and_arrays():
    meta = {"kind": protocol.MESSAGE_PROBE, "repetition": 2, "status": protocol.STATUS_OK}
    arrays = {
        "keys": np.array([1, 2, 2**63], dtype=np.uint64),
        "items": np.array([[1, 2], [3, 4]], dtype=np.int64),
        "empty": np.empty(0, dtype=np.int64),
    }
    decoded_meta, decoded = protocol.decode_message(protocol.encode_message(meta, arrays))
    assert decoded_meta == meta
    assert set(decoded) == set(arrays)
    for name, array in arrays.items():
        assert decoded[name].dtype == array.dtype
        assert decoded[name].shape == array.shape
        assert np.array_equal(decoded[name], array)


def test_decoded_arrays_are_zero_copy_views():
    payload = protocol.encode_message({"a": 1}, {"xs": np.arange(8, dtype=np.int64)})
    _meta, arrays = protocol.decode_message(payload)
    assert arrays["xs"].base is not None  # a view over the payload, not a copy


def test_probe_request_and_response_round_trip():
    keys = np.array([7, 9], dtype=np.uint64)
    items = np.array([1, 2, 3], dtype=np.int64)
    offsets = np.array([0, 2, 3], dtype=np.int64)
    meta, arrays = protocol.decode_message(
        protocol.encode_probe_request(1, keys, items, offsets)
    )
    assert meta["kind"] == protocol.MESSAGE_PROBE
    assert meta["repetition"] == 1
    assert np.array_equal(arrays["keys"], keys)

    lengths = np.array([2, 0], dtype=np.int64)
    ids = np.array([4, 5], dtype=np.int64)
    meta, arrays = protocol.decode_message(protocol.encode_probe_response(lengths, ids))
    assert meta["status"] == protocol.STATUS_OK
    assert np.array_equal(arrays["lengths"], lengths)
    assert np.array_equal(arrays["ids"], ids)


def test_error_payload_round_trips_kind_and_message():
    meta, arrays = protocol.decode_message(
        protocol.encode_error(protocol.MESSAGE_PROBE, "boom")
    )
    assert meta["status"] == protocol.STATUS_ERROR
    assert meta["kind"] == protocol.MESSAGE_PROBE
    assert meta["error"] == "boom"
    assert arrays == {}


@pytest.mark.parametrize(
    "mutate",
    [
        lambda payload: b"XXXX" + payload[4:],  # wrong magic
        lambda payload: payload[:10],  # truncated header
        lambda payload: payload[:-3],  # truncated array bytes
        lambda payload: payload[:4] + struct.pack("<I", 2**30) + payload[8:],
    ],
    ids=["bad-magic", "short-header", "short-arrays", "huge-header-len"],
)
def test_corrupt_payloads_raise_protocol_error(mutate):
    payload = protocol.encode_message(
        {"type": protocol.MESSAGE_PROBE}, {"keys": np.arange(4, dtype=np.uint64)}
    )
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(mutate(payload))


def test_error_code_round_trips():
    meta, _ = protocol.decode_message(
        protocol.encode_error(protocol.MESSAGE_PROBE, "too slow", code=protocol.ERROR_CODE_DEADLINE)
    )
    assert meta["code"] == protocol.ERROR_CODE_DEADLINE
    meta, _ = protocol.decode_message(protocol.encode_error(protocol.MESSAGE_PROBE, "boom"))
    assert "code" not in meta


def test_probe_request_carries_optional_deadline():
    keys = np.array([7], dtype=np.uint64)
    items = np.array([1], dtype=np.int64)
    offsets = np.array([0, 1], dtype=np.int64)
    meta, _ = protocol.decode_message(
        protocol.encode_probe_request(0, keys, items, offsets, deadline=123.5)
    )
    assert meta["deadline"] == 123.5
    meta, _ = protocol.decode_message(protocol.encode_probe_request(0, keys, items, offsets))
    assert "deadline" not in meta


def _flip_last_payload_byte(payload: bytes) -> bytes:
    frame = bytearray(payload)
    frame[-1] ^= 0xFF
    return bytes(frame)


def test_flipped_payload_byte_fails_the_checksum():
    payload = protocol.encode_message(
        {"kind": protocol.MESSAGE_PROBE}, {"ids": np.arange(16, dtype=np.int64)}
    )
    with pytest.raises(protocol.ProtocolError, match="checksum mismatch"):
        protocol.decode_message(_flip_last_payload_byte(payload))


def _rewrite_header(payload: bytes, **overrides):
    """Re-encode the frame with header fields patched (or deleted via None)."""
    import json

    _magic, header_len = protocol._PREFIX.unpack_from(payload)
    data_start = protocol._PREFIX.size + header_len
    header = json.loads(payload[protocol._PREFIX.size : data_start])
    for key, value in overrides.items():
        if value is None:
            header.pop(key, None)
        else:
            header[key] = value
    raw = json.dumps(header).encode("utf-8")
    return protocol._PREFIX.pack(protocol._MAGIC, len(raw)) + raw + payload[data_start:]


def test_frame_without_checksum_fields_still_decodes():
    """Backward compatibility: a peer speaking the pre-checksum dialect."""
    payload = protocol.encode_message(
        {"kind": protocol.MESSAGE_PROBE}, {"ids": np.arange(4, dtype=np.int64)}
    )
    legacy = _rewrite_header(payload, data_len=None, crc32=None)
    meta, arrays = protocol.decode_message(legacy)
    assert meta["kind"] == protocol.MESSAGE_PROBE
    assert np.array_equal(arrays["ids"], np.arange(4, dtype=np.int64))


def test_crc_without_data_len_is_rejected():
    payload = protocol.encode_message({"kind": protocol.MESSAGE_PROBE}, {})
    with pytest.raises(protocol.ProtocolError, match="crc32 but no data_len"):
        protocol.decode_message(_rewrite_header(payload, data_len=None))


def test_data_len_past_received_bytes_is_truncation():
    payload = protocol.encode_message(
        {"kind": protocol.MESSAGE_PROBE}, {"ids": np.arange(4, dtype=np.int64)}
    )
    with pytest.raises(protocol.ProtocolError, match="truncated"):
        protocol.decode_message(_rewrite_header(payload, data_len=4 * 8 + 1))


def test_array_past_declared_data_len_is_rejected():
    payload = protocol.encode_message(
        {"kind": protocol.MESSAGE_PROBE}, {"ids": np.arange(4, dtype=np.int64)}
    )
    _magic, header_len = protocol._PREFIX.unpack_from(payload)
    import json

    header = json.loads(payload[protocol._PREFIX.size : protocol._PREFIX.size + header_len])
    header["arrays"]["ids"]["shape"] = [5]  # runs one element past data_len
    bad = _rewrite_header(payload, arrays=header["arrays"]) + b"\x00" * 8
    with pytest.raises(protocol.ProtocolError, match="runs past the declared payload"):
        protocol.decode_message(bad)


def test_oversized_declared_array_is_rejected():
    payload = protocol.encode_message(
        {"kind": protocol.MESSAGE_PROBE}, {"ids": np.arange(4, dtype=np.int64)}
    )
    _magic, header_len = protocol._PREFIX.unpack_from(payload)
    import json

    header = json.loads(payload[protocol._PREFIX.size : protocol._PREFIX.size + header_len])
    header["arrays"]["ids"]["shape"] = [1 << 40]
    with pytest.raises(protocol.ProtocolError, match="frame cap"):
        protocol.decode_message(_rewrite_header(payload, arrays=header["arrays"]))


def test_socket_framing_round_trip():
    left, right = socket.socketpair()
    try:
        payload = protocol.encode_message({"n": 3}, {"xs": np.arange(3, dtype=np.int64)})
        protocol.send_frame(left, payload)
        assert protocol.recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_recv_frame_raises_connection_closed_on_eof():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_frame(right)
    finally:
        right.close()

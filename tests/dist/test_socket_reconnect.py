"""Socket-transport reconnect edge cases.

The socket transport promises one reconnect per request: a dead or
misbehaving peer costs the first attempt, the retry either lands on a
healthy listener or the request surfaces ``ShardUnavailableError``.
These tests drive that path with real servers — a worker restart on the
same unix socket path, a peer that closes mid-frame, and concurrent
requests racing a single reconnect slot.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dist import protocol
from repro.dist.transport import ShardUnavailableError, SocketTransport
from repro.dist.worker import ShardServer, ShardWorkerState

NUM_SHARDS = 4
ALL_SHARDS = tuple(range(NUM_SHARDS))


def _start_server(state: ShardWorkerState, socket_path: str) -> ShardServer:
    server = ShardServer(state, socket_path=socket_path)
    server.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def _probe_args(dist_index):
    keys = np.zeros(1, dtype=np.uint64)  # key 0 routes to shard 0
    items = np.asarray(sorted(dist_index.dataset[0]), dtype=np.int64)
    offsets = np.asarray([0, items.size], dtype=np.int64)
    return keys, items, offsets


def _shutdown_peer(transport: SocketTransport, worker: int) -> None:
    """Cleanly stop the server *and* its established connection.

    ``ShardServer.close`` alone only stops the listener — the connection
    thread keeps serving the cached socket, so a test that wants a stale
    client connection must make the peer hang up too.
    """
    transport._request(
        worker, protocol.encode_message({"kind": protocol.MESSAGE_SHUTDOWN})
    )
    # The server unlinks its socket path just after answering; wait for it
    # so a restart on the same path can rebind.
    address = transport.addresses[worker]
    path = address[len("unix:") :] if address.startswith("unix:") else address
    deadline = time.time() + 5.0
    while os.path.exists(path) and time.time() < deadline:
        time.sleep(0.01)


class FlakyShardServer:
    """A frame-speaking server that can truncate one response mid-frame."""

    def __init__(self, state: ShardWorkerState, socket_path: str) -> None:
        self._state = state
        self._path = socket_path
        self.truncate_next = threading.Event()
        self._closed = threading.Event()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(socket_path)
        self._listener.listen()
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        while not self._closed.is_set():
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while True:
                try:
                    payload = protocol.recv_frame(connection)
                except (protocol.ConnectionClosed, OSError):
                    return
                response, _shutdown = self._state.handle_frame(payload)
                if self.truncate_next.is_set():
                    self.truncate_next.clear()
                    frame = protocol._FRAME_PREFIX.pack(len(response))
                    frame += response[: len(response) // 2]
                    try:
                        connection.sendall(frame)
                    except OSError:
                        pass
                    return  # hang up mid-frame
                try:
                    protocol.send_frame(connection, response)
                except OSError:
                    return

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            os.unlink(self._path)
        except OSError:
            pass


def test_worker_restart_between_requests_reconnects_once(dist_index, tmp_path):
    socket_path = str(tmp_path / "worker.sock")
    state = ShardWorkerState(dist_index.path, ALL_SHARDS)
    _start_server(state, socket_path)
    transport = SocketTransport([socket_path])
    try:
        keys, items, offsets = _probe_args(dist_index)
        baseline, baseline_ids = transport.probe(0, 0, keys, items, offsets)

        _shutdown_peer(transport, 0)
        _start_server(ShardWorkerState(dist_index.path, ALL_SHARDS), socket_path)

        # The cached connection is stale; the transport must notice, record
        # a recovered failure, reconnect, and still answer bit-identically.
        lengths, ids = transport.probe(0, 0, keys, items, offsets)
        assert np.array_equal(lengths, baseline)
        assert np.array_equal(ids, baseline_ids)
        failures, recoveries = transport.counters()
        assert failures[0] == 1
        assert recoveries[0] == 1
    finally:
        transport.close()


def test_peer_closing_mid_frame_triggers_reconnect(dist_index, tmp_path):
    socket_path = str(tmp_path / "flaky.sock")
    state = ShardWorkerState(dist_index.path, ALL_SHARDS)
    server = FlakyShardServer(state, socket_path)
    transport = SocketTransport([socket_path])
    try:
        keys, items, offsets = _probe_args(dist_index)
        baseline, baseline_ids = transport.probe(0, 0, keys, items, offsets)

        # A partial frame followed by EOF is a torn response, not a valid
        # error frame — the client treats it as a connection failure.
        server.truncate_next.set()
        lengths, ids = transport.probe(0, 0, keys, items, offsets)
        assert np.array_equal(lengths, baseline)
        assert np.array_equal(ids, baseline_ids)
        failures, recoveries = transport.counters()
        assert failures[0] == 1
        assert recoveries[0] == 1
    finally:
        transport.close()
        server.close()


def test_concurrent_requests_race_one_reconnect(dist_index, tmp_path):
    socket_path = str(tmp_path / "race.sock")
    state = ShardWorkerState(dist_index.path, ALL_SHARDS)
    server = FlakyShardServer(state, socket_path)
    transport = SocketTransport([socket_path])
    try:
        keys, items, offsets = _probe_args(dist_index)
        baseline, baseline_ids = transport.probe(0, 0, keys, items, offsets)

        # Break the live connection, then hit it from many threads at once.
        # The per-worker lock serialises the reconnect: exactly one request
        # pays for it, every request still succeeds.
        server.truncate_next.set()
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(transport.probe, 0, 0, keys, items, offsets)
                for _ in range(8)
            ]
            results = [future.result(timeout=30) for future in futures]
        for lengths, ids in results:
            assert np.array_equal(lengths, baseline)
            assert np.array_equal(ids, baseline_ids)
        failures, recoveries = transport.counters()
        assert failures[0] == 1
        assert recoveries[0] == 1
    finally:
        transport.close()
        server.close()


def test_exhausted_reconnects_surface_shard_unavailable(dist_index, tmp_path):
    socket_path = str(tmp_path / "gone.sock")
    state = ShardWorkerState(dist_index.path, ALL_SHARDS)
    _start_server(state, socket_path)
    transport = SocketTransport([socket_path])
    try:
        keys, items, offsets = _probe_args(dist_index)
        transport.probe(0, 0, keys, items, offsets)

        # Server gone for good: stale connection fails, the reconnect finds
        # no listener, and the request surfaces as unavailable.
        _shutdown_peer(transport, 0)
        with pytest.raises(ShardUnavailableError, match="is unavailable"):
            transport.probe(0, 0, keys, items, offsets)
        failures, recoveries = transport.counters()
        assert failures[0] == 2
        assert recoveries[0] == 1
        assert not transport._alive(0)
    finally:
        transport.close()

"""Fault-spec grammar and FaultyTransport behaviour.

The parser tests pin the spec grammar (clauses, options, presets, the
standalone ``seed=`` clause); the transport tests wrap the in-process
transport and assert each fault kind produces the failure the router is
built to handle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    FAULT_PRESETS,
    FaultClause,
    FaultSpec,
    FaultyTransport,
    load_routed_index,
    shard_router_of,
)
from repro.dist.faults import fault_spec_from_env
from repro.dist.protocol import ProtocolError
from repro.dist.transport import ShardUnavailableError

NUM_WORKERS = 2


# --------------------------------------------------------------------- #
# Grammar
# --------------------------------------------------------------------- #


def test_parse_single_clause_with_options():
    spec = FaultSpec.parse("crash:worker=0:count=2")
    assert spec.clauses == (FaultClause(kind="crash", worker=0, count=2),)
    assert spec.seed == 0


def test_parse_multiple_clauses_and_seed():
    spec = FaultSpec.parse("delay:seconds=0.05:worker=1,drop:probability=0.1,seed=7")
    assert len(spec.clauses) == 2
    assert spec.clauses[0] == FaultClause(kind="delay", worker=1, seconds=0.05)
    assert spec.clauses[1] == FaultClause(kind="drop", probability=0.1)
    assert spec.seed == 7


def test_parse_preset_expands():
    spec = FaultSpec.parse("crash-one-worker")
    assert spec == FaultSpec.parse(FAULT_PRESETS["crash-one-worker"])


def test_slow_start_defaults_to_one_shot():
    spec = FaultSpec.parse("slow-start:seconds=0.01")
    assert spec.clauses[0].count == 1


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "explode",
        "crash:worker",
        "crash:volume=11",
        "seed=1",  # options alone are not a schedule
        "probability=0.5",
        "seed=1:worker=0",
    ],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        FaultSpec.parse(bad)


def test_clause_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultClause(kind="explode")
    with pytest.raises(ValueError, match="probability"):
        FaultClause(kind="drop", probability=1.5)
    with pytest.raises(ValueError, match="seconds"):
        FaultClause(kind="delay", seconds=-1.0)


def test_from_spec_normalises():
    assert FaultSpec.from_spec(None) is None
    spec = FaultSpec.parse("drop")
    assert FaultSpec.from_spec(spec) is spec
    assert FaultSpec.from_spec("drop") == spec


def test_env_hook():
    assert fault_spec_from_env({}) is None
    assert fault_spec_from_env({"REPRO_FAULTS": "  "}) is None
    spec = fault_spec_from_env({"REPRO_FAULTS": "drop:worker=1"})
    assert spec is not None
    assert spec.clauses[0] == FaultClause(kind="drop", worker=1)


# --------------------------------------------------------------------- #
# FaultyTransport over the in-process transport
# --------------------------------------------------------------------- #


@pytest.fixture()
def faulty_loader(dist_index):
    """Load the fixture index with a fault spec over the inproc transport."""
    loaded = []

    def load(spec):
        index = load_routed_index(
            dist_index.path,
            transport="inproc",
            shard_procs=NUM_WORKERS,
            fault_spec=spec,
        )
        loaded.append(index)
        return index

    yield load
    for index in loaded:
        shard_router_of(index).close()


def _transport_of(index) -> FaultyTransport:
    transport = shard_router_of(index)._transport
    assert isinstance(transport, FaultyTransport)
    return transport


def test_loader_wraps_transport_and_describe_stays_clean(faulty_loader):
    index = faulty_loader("drop:worker=0:count=1")
    transport = _transport_of(index)
    assert transport.kind == "faulty+inproc"
    # describe() is fault-free by design: topology discovery already ran.
    assert transport.describe(0)["shards"]


def test_drop_fault_fires_count_times_then_clears(faulty_loader, mmap_index, dist_index):
    index = faulty_loader("drop:worker=0:count=2")
    transport = _transport_of(index)
    queries = dist_index.queries[:6]
    # The router retries through its breaker over time; drive the transport
    # directly to observe the raw schedule.
    keys = np.zeros(1, dtype=np.int64)
    items = np.asarray(sorted(dist_index.dataset[0]), dtype=np.int64)
    offsets = np.asarray([0, items.size], dtype=np.int64)
    for _ in range(2):
        with pytest.raises(ShardUnavailableError, match="injected connection drop"):
            transport.probe(0, 0, keys, items, offsets)
    # Schedule exhausted: the call flows through to the real worker.
    lengths, gathered = transport.probe(0, 0, keys, items, offsets)
    assert lengths.shape == (1,)
    assert transport.injected_counts()[0] == 2
    failures, recoveries = transport.counters()
    assert failures[0] >= 2
    assert transport.health()[0]["injected_faults"] == 2
    del queries, mmap_index, recoveries


def test_corrupt_fault_raises_protocol_error(faulty_loader, dist_index):
    index = faulty_loader("corrupt:worker=1:count=1")
    transport = _transport_of(index)
    keys = np.zeros(1, dtype=np.int64)
    items = np.asarray(sorted(dist_index.dataset[0]), dtype=np.int64)
    offsets = np.asarray([0, items.size], dtype=np.int64)
    with pytest.raises(ProtocolError, match="checksum"):
        transport.probe(1, 0, keys, items, offsets)


def test_worker_filter_leaves_other_workers_alone(faulty_loader, dist_index):
    index = faulty_loader("drop:worker=0")
    transport = _transport_of(index)
    # Key 0 routes to the first shard (worker 0); the maximal key to the
    # last shard (worker 1) — the key space is fence-partitioned.
    low_keys = np.zeros(1, dtype=np.uint64)
    high_keys = np.asarray([np.iinfo(np.uint64).max], dtype=np.uint64)
    items = np.asarray(sorted(dist_index.dataset[0]), dtype=np.int64)
    offsets = np.asarray([0, items.size], dtype=np.int64)
    lengths, _ = transport.probe(1, 0, high_keys, items, offsets)
    assert lengths.shape == (1,)
    assert transport.injected_counts() == [0, 0]
    with pytest.raises(ShardUnavailableError):
        transport.probe(0, 0, low_keys, items, offsets)


def test_probability_schedule_is_seed_deterministic(faulty_loader, dist_index):
    outcomes = []
    for _ in range(2):
        index = faulty_loader("drop:probability=0.5,seed=9")
        transport = _transport_of(index)
        keys = np.zeros(1, dtype=np.int64)
        items = np.asarray(sorted(dist_index.dataset[0]), dtype=np.int64)
        offsets = np.asarray([0, items.size], dtype=np.int64)
        fired = []
        for _ in range(12):
            try:
                transport.probe(0, 0, keys, items, offsets)
                fired.append(False)
            except ShardUnavailableError:
                fired.append(True)
        outcomes.append(fired)
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0]) and not all(outcomes[0])

"""Failure semantics: dead workers, bounded respawn, the 503 surface."""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.dist import (
    ShardUnavailableError,
    SpawnTransport,
    load_routed_index,
    shard_router_of,
    worker_shard_ranges,
)
from repro.serve.config import IndexSpec, ServeConfig
from repro.serve.service import ApiError, QueryService

# Mirror the conftest fixture geometry (pytest imports conftest outside a
# package, so the constants cannot be imported from it directly).
NUM_SHARDS = 4
NUM_WORKERS = 2


@pytest.fixture
def killable_index(dist_index):
    """A private spawn-routed index the test is allowed to damage."""
    index = load_routed_index(
        dist_index.path, transport="spawn", shard_procs=NUM_WORKERS, timeout=60.0
    )
    yield index
    shard_router_of(index).close()


def test_killed_worker_respawns_and_answers(mmap_index, killable_index, dist_index):
    expected_arrays, _stats = mmap_index.query_candidates_arrays_batch(
        dist_index.queries
    )
    router = shard_router_of(killable_index)
    router.take_fanout_stats()

    pid = router.transport.pid_of(0)
    assert pid is not None
    os.kill(pid, signal.SIGKILL)
    time.sleep(0.2)

    arrays, stats = killable_index.query_candidates_arrays_batch(dist_index.queries)
    for expected, actual in zip(expected_arrays, arrays):
        assert np.array_equal(expected, actual)
    assert stats.fanout.failures[0] >= 1
    assert stats.fanout.respawns[0] >= 1
    # The respawned worker has a new pid and stays healthy afterwards.
    assert router.transport.pid_of(0) != pid
    health = router.snapshot()["per_worker"]
    assert all(entry["alive"] for entry in health)


def test_exhausted_respawns_raise_shard_unavailable(dist_index):
    transport = SpawnTransport(
        dist_index.path,
        worker_shard_ranges(NUM_SHARDS, 1),
        timeout=30.0,
        max_respawns=0,
    )
    try:
        keys = np.array([123], dtype=np.uint64)
        items = np.array([1, 2], dtype=np.int64)
        offsets = np.array([0, 2], dtype=np.int64)
        transport.probe(0, 0, keys, items, offsets)  # the worker is healthy
        os.kill(transport.pid_of(0), signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ShardUnavailableError):
            transport.probe(0, 0, keys, items, offsets)
        failures, recoveries = transport.counters()
        assert failures[0] >= 1
        assert recoveries[0] == 0
    finally:
        transport.close()


def test_dead_shard_worker_surfaces_as_503_with_retry_after(dist_index):
    """A ShardUnavailableError escaping the engine maps to 503 + Retry-After."""

    async def scenario() -> None:
        spec = IndexSpec(
            name="default", path=str(dist_index.path), shard_procs=NUM_WORKERS
        )
        service = QueryService([spec], ServeConfig(batch_window_ms=0.0))
        await service.start()
        try:
            query_payload = {"query": sorted(dist_index.dataset[0])}
            response = await service.query(query_payload)
            assert response["index"] == "default"

            router = shard_router_of(service._indexes["default"].index)
            assert router is not None

            def dead_probe(*_args, **_kwargs):
                raise ShardUnavailableError(
                    "shard worker 0 (shards [0, 1]) is unavailable"
                )

            router.probe_batch_routed = dead_probe
            with pytest.raises(ApiError) as excinfo:
                await service.query(query_payload)
            assert excinfo.value.status == 503
            assert excinfo.value.headers.get("Retry-After") == "1"

            with pytest.raises(ApiError) as excinfo:
                await service.query_batch(
                    {"queries": [sorted(v) for v in dist_index.dataset[:4]]}
                )
            assert excinfo.value.status == 503

            with pytest.raises(ApiError) as excinfo:
                await service.similarity_join_endpoint(
                    {"probes": [sorted(v) for v in dist_index.dataset[:4]]}
                )
            assert excinfo.value.status == 503
            assert excinfo.value.headers.get("Retry-After") == "1"

            # A breaker-annotated error carries its backoff; the header is
            # the ceiling of that, never less than one second.
            def backing_off_probe(*_args, **_kwargs):
                raise ShardUnavailableError(
                    "shard worker 0 is unavailable", retry_after=3.2
                )

            router.probe_batch_routed = backing_off_probe
            with pytest.raises(ApiError) as excinfo:
                await service.query(query_payload)
            assert excinfo.value.status == 503
            assert excinfo.value.headers.get("Retry-After") == "4"
        finally:
            await service.close()

    asyncio.run(scenario())

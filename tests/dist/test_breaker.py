"""Unit tests for the per-worker circuit breaker state machine.

These drive :class:`CircuitBreaker` with an injected fake clock, so the
closed → open → half-open transitions and the exponential backoff schedule
are asserted exactly, without sleeping.
"""

from __future__ import annotations

import pytest

from repro.dist.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("jitter_ratio", 0.0)  # exact backoff arithmetic
    breaker = CircuitBreaker(clock=clock, **kwargs)
    return breaker, clock


def test_closed_breaker_admits_everything():
    breaker, _ = make_breaker()
    assert breaker.state == STATE_CLOSED
    assert breaker.state_code == 0
    assert all(breaker.acquire() for _ in range(10))
    assert breaker.retry_after() == 0.0


def test_failure_opens_and_backoff_gates_requests():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert breaker.state_code == 2
    assert not breaker.acquire()
    assert breaker.retry_after() == pytest.approx(1.0)
    clock.advance(0.5)
    assert not breaker.acquire()
    assert breaker.retry_after() == pytest.approx(0.5)


def test_elapsed_backoff_admits_exactly_one_half_open_probe():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.state == STATE_HALF_OPEN  # elapsed open reads as half-open
    assert breaker.acquire()  # the probe
    assert breaker.probing
    assert not breaker.acquire()  # concurrent requests keep fast-failing
    assert not breaker.acquire()


def test_probe_success_closes_and_resets():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.acquire()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.consecutive_incidents == 0
    assert breaker.retry_after() == 0.0
    assert breaker.acquire()


def test_probe_failure_reopens_with_doubled_backoff():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    backoffs = []
    for _ in range(4):
        breaker.record_failure()
        backoffs.append(breaker.retry_after())
        clock.advance(breaker.retry_after())
        assert breaker.acquire()  # half-open probe admitted
    assert backoffs == pytest.approx([1.0, 2.0, 4.0, 8.0])
    assert breaker.consecutive_incidents == 4


def test_backoff_is_capped_at_max():
    breaker, clock = make_breaker(base_backoff_seconds=1.0, max_backoff_seconds=4.0)
    for _ in range(6):
        breaker.record_failure()
        clock.advance(breaker.retry_after())
        assert breaker.acquire()
    breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(4.0)


def test_jitter_stretches_backoff_deterministically():
    first, clock_a = make_breaker(jitter_ratio=0.5, seed=3)
    second, _ = make_breaker(jitter_ratio=0.5, seed=3)
    first.record_failure()
    second.record_failure()
    # Same seed, same schedule; jitter only ever stretches the base.
    assert first.retry_after() == second.retry_after()
    assert 0.25 <= first.retry_after() <= 0.25 * 1.5


def test_neutral_outcome_releases_probe_slot_without_closing():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.acquire()
    breaker.record_neutral()  # e.g. deadline expired mid-probe
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.consecutive_incidents == 1
    assert breaker.acquire()  # next request takes the probe slot


def test_snapshot_shape():
    breaker, clock = make_breaker(base_backoff_seconds=1.0)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap["state"] == STATE_OPEN
    assert snap["state_code"] == 2
    assert snap["consecutive_incidents"] == 1
    assert snap["retry_after_seconds"] == pytest.approx(1.0)
    assert snap["last_backoff_seconds"] == pytest.approx(1.0)
    clock.advance(1.0)
    assert breaker.snapshot()["state"] == STATE_HALF_OPEN


def test_constructor_validation():
    with pytest.raises(ValueError, match="base_backoff_seconds"):
        CircuitBreaker(base_backoff_seconds=0.0)
    with pytest.raises(ValueError, match="max_backoff_seconds"):
        CircuitBreaker(base_backoff_seconds=2.0, max_backoff_seconds=1.0)
    with pytest.raises(ValueError, match="jitter_ratio"):
        CircuitBreaker(jitter_ratio=1.5)

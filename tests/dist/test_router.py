"""Router/unit-level tests: partition maps, fan-out accounting, read-only."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mmap_store import MmapReadOnlyError
from repro.core.stats import BatchQueryStats, ShardFanoutStats
from repro.dist import shard_router_of, shard_to_worker_map, worker_shard_ranges


# --------------------------------------------------------------------- #
# Partition maps
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("num_shards,num_workers", [(4, 1), (4, 2), (8, 3), (3, 8)])
def test_worker_shard_ranges_cover_every_shard_once(num_shards, num_workers):
    assignments = worker_shard_ranges(num_shards, num_workers)
    flattened = [shard for shards in assignments for shard in shards]
    assert sorted(flattened) == list(range(num_shards))
    for shards in assignments:
        if shards:  # each worker's slice is contiguous
            assert list(shards) == list(range(shards[0], shards[-1] + 1))


def test_shard_to_worker_map_validates_cover():
    owner = shard_to_worker_map([[0, 1], [2, 3]], 4)
    assert owner.tolist() == [0, 0, 1, 1]
    with pytest.raises(ValueError):
        shard_to_worker_map([[0, 1], [1, 2]], 4)  # shard 3 missing, 1 doubled
    with pytest.raises(ValueError):
        shard_to_worker_map([[0], [1]], 3)  # shard 2 unowned


# --------------------------------------------------------------------- #
# Fan-out statistics
# --------------------------------------------------------------------- #


def test_fanout_stats_add_and_round_trip():
    stats = ShardFanoutStats.sized(2)
    stats.requests[0] = 3
    stats.rows[1] = 10
    stats.seconds[0] = 0.5
    stats.failures[1] = 1
    stats.respawns[1] = 1
    other = ShardFanoutStats.sized(3)
    other.requests[2] = 7
    stats.add(other)
    assert stats.workers == 3
    assert stats.requests == [3, 0, 7]
    assert stats.total_requests == 10
    assert stats.total_rows == 10

    restored = ShardFanoutStats.from_dict(stats.to_dict(), strict=True)
    assert restored.to_dict() == stats.to_dict()


def test_fanout_stats_strict_rejects_inconsistent_payload():
    payload = ShardFanoutStats.sized(2).to_dict()
    payload["requests"] = [1, 2, 3]  # three entries for a two-worker record
    with pytest.raises(ValueError):
        ShardFanoutStats.from_dict(payload, strict=True)


def test_fanout_degraded_fields_round_trip_and_merge():
    stats = ShardFanoutStats.sized(2)
    stats.aborts[1] = 2
    stats.completeness = 0.75
    stats.shards_missing = [3]
    restored = ShardFanoutStats.from_dict(stats.to_dict(), strict=True)
    assert restored.aborts == [0, 2]
    assert restored.completeness == 0.75
    assert restored.shards_missing == [3]
    assert restored.to_dict() == stats.to_dict()

    # Merging keeps the weakest completeness and the union of missing
    # shards; aborts accumulate positionally like the other counters.
    other = ShardFanoutStats.sized(2)
    other.aborts[1] = 1
    other.completeness = 0.5
    other.shards_missing = [0, 3]
    stats.add(other)
    assert stats.aborts == [0, 3]
    assert stats.completeness == 0.5
    assert stats.shards_missing == [0, 3]


def test_fanout_legacy_payload_defaults_to_full_answer():
    # Pre-degraded-mode payloads carry none of the new fields; they decode
    # as "no aborts, complete answer" even in strict mode.
    payload = ShardFanoutStats.sized(2).to_dict()
    del payload["aborts"], payload["completeness"], payload["shards_missing"]
    restored = ShardFanoutStats.from_dict(payload, strict=True)
    assert restored.aborts == [0, 0]
    assert restored.completeness == 1.0
    assert restored.shards_missing == []


def test_fanout_strict_rejects_out_of_range_completeness():
    payload = ShardFanoutStats.sized(2).to_dict()
    payload["completeness"] = 1.5
    with pytest.raises(ValueError, match="completeness"):
        ShardFanoutStats.from_dict(payload, strict=True)


def test_batch_stats_round_trip_carries_fanout():
    stats = BatchQueryStats()
    stats.fanout = ShardFanoutStats.sized(2)
    stats.fanout.requests[1] = 4
    restored = BatchQueryStats.from_dict(stats.to_dict(), strict=True)
    assert restored.fanout.to_dict() == stats.fanout.to_dict()

    merged = BatchQueryStats()
    merged.accumulate(stats)
    merged.accumulate(stats)
    assert merged.fanout.requests == [0, 8]


def test_take_fanout_stats_drains_pending_delta(inproc_index):
    router = shard_router_of(inproc_index)
    assert router is not None
    router.take_fanout_stats()  # the engine drains after each batch; reset

    # Drive the router directly: the engine's own batches drain pending
    # themselves, so a probe issued outside a batch must be what take() sees.
    paths = [(1, 2, 3), (4, 5)]
    keys = [hash(path) & (2**63 - 1) for path in paths]
    router.probe_batch_routed(0, paths, keys)

    taken = router.take_fanout_stats()
    assert taken.total_requests > 0
    drained = router.take_fanout_stats()
    assert drained.total_requests == 0
    # Lifetime totals survive the drain.
    snapshot = router.snapshot()
    assert sum(entry["requests"] for entry in snapshot["per_worker"]) >= (
        taken.total_requests
    )


# --------------------------------------------------------------------- #
# The read-only contract of a routed index
# --------------------------------------------------------------------- #


def test_routed_filter_index_rejects_mutation(inproc_index):
    filter_index = inproc_index._engine.filter_indexes[0]
    with pytest.raises(MmapReadOnlyError):
        filter_index.add((1, 2), 0)
    with pytest.raises(MmapReadOnlyError):
        filter_index.add_postings(np.array([1]), np.array([0]))
    with pytest.raises(TypeError):
        filter_index.to_state()
    with pytest.raises(TypeError):
        filter_index.to_sorted_state()
    filter_index.compact()  # no-op, must not raise


def test_routed_filter_index_counts_match_mmap(mmap_index, inproc_index):
    for expected, actual in zip(
        mmap_index._engine.filter_indexes, inproc_index._engine.filter_indexes
    ):
        assert len(actual) == len(expected)
        assert actual.num_filters == expected.num_filters
        assert actual.total_entries == expected.total_entries
        assert actual.num_shards == expected.num_shards
        assert actual.has_duplicate_keys == expected.has_duplicate_keys
        assert np.array_equal(actual.fences, expected.fences)


def test_routed_contains_matches_mmap(mmap_index, inproc_index):
    mmap_filters = mmap_index._engine.filter_indexes
    routed_filters = inproc_index._engine.filter_indexes
    probes = [(1, 2, 3), (0,), (5, 9, 14, 2), (400, 401)]
    for expected_index, actual_index in zip(mmap_filters, routed_filters):
        for path in probes:
            assert (path in actual_index) == (path in expected_index)
        # A path that is actually stored must be found over the wire too.
        stored = expected_index.lookup((1, 2, 3))
        assert actual_index.lookup((1, 2, 3)) == stored


def test_count_probe_shards_matches_mmap(mmap_index, inproc_index):
    keys = np.array([0, 1, 2**16, 2**40, 2**63, 2**64 - 1], dtype=np.uint64)
    expected = mmap_index._engine.filter_indexes[0].count_probe_shards(keys)
    assert inproc_index._engine.filter_indexes[0].count_probe_shards(keys) == expected
    assert inproc_index._engine.filter_indexes[0].count_probe_shards([]) == 0

"""Fixtures for the distributed (shard-router) execution tests.

One small skew-adaptive index is built and saved in the sharded v3 format
once per session; the transport tests open it through every execution mode
(single-process mmap, in-process router, spawned worker processes, socket
servers) and assert the results are bit-identical.  Spawn and socket
transports are session-scoped because starting processes/servers dominates
the test runtime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import pytest

from repro import SkewAdaptiveIndex, load_index, save_index
from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.dist import (
    ShardServer,
    ShardWorkerState,
    load_routed_index,
    shard_router_of,
    worker_shard_ranges,
)
from repro.testing import rng_for

#: Shard count the fixture index is saved with (enough for a 2-worker split).
NUM_SHARDS = 4

#: Worker count every multi-worker transport fixture uses.
NUM_WORKERS = 2


@dataclass
class DistIndex:
    """The saved fixture index plus the traffic the tests replay against it."""

    path: Path
    dataset: list[frozenset[int]]
    queries: list[frozenset[int]]


@pytest.fixture(scope="session")
def dist_index(tmp_path_factory, skewed_distribution, skewed_dataset) -> DistIndex:
    index = SkewAdaptiveIndex(
        skewed_distribution,
        config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=11),
    )
    index.build(skewed_dataset)
    path = tmp_path_factory.mktemp("dist") / "index.v3"
    save_index(index, path, config=PersistenceConfig(shards=NUM_SHARDS))
    rng = rng_for("tests:dist-queries")
    sampled = skewed_distribution.sample_many(24, rng)
    queries = [query if query else frozenset({0}) for query in sampled]
    # Mix in stored vectors so a good fraction of queries actually match.
    queries.extend(skewed_dataset[:16])
    return DistIndex(path=path, dataset=skewed_dataset, queries=queries)


@pytest.fixture(scope="session")
def mmap_index(dist_index: DistIndex):
    """The single-process mmap baseline every transport is compared against."""
    return load_index(dist_index.path, mode="mmap")


@pytest.fixture(scope="session")
def shard_servers(dist_index: DistIndex, tmp_path_factory) -> Iterator[list[str]]:
    """Two in-process socket servers (one TCP, one unix) covering the shards."""
    assignments = worker_shard_ranges(NUM_SHARDS, NUM_WORKERS)
    servers: list[ShardServer] = []
    threads: list[threading.Thread] = []
    addresses: list[str] = []
    socket_dir = tmp_path_factory.mktemp("shard-sockets")
    for worker, shards in enumerate(assignments):
        state = ShardWorkerState(dist_index.path, shards)
        if worker % 2:
            server = ShardServer(state, socket_path=str(socket_dir / f"w{worker}.sock"))
        else:
            server = ShardServer(state, host="127.0.0.1", port=0)
        addresses.append(server.start())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield addresses
    for server in servers:
        server.close()
    for thread in threads:
        thread.join(timeout=10)


def _close_routed(index) -> None:
    router = shard_router_of(index)
    assert router is not None
    router.close()


@pytest.fixture(scope="session")
def inproc_index(dist_index: DistIndex):
    index = load_routed_index(
        dist_index.path, transport="inproc", shard_procs=NUM_WORKERS
    )
    yield index
    _close_routed(index)


@pytest.fixture(scope="session")
def spawn_index(dist_index: DistIndex):
    index = load_routed_index(
        dist_index.path, transport="spawn", shard_procs=NUM_WORKERS, timeout=60.0
    )
    yield index
    _close_routed(index)


@pytest.fixture(scope="session")
def socket_index(dist_index: DistIndex, shard_servers: list[str]):
    index = load_routed_index(
        dist_index.path, transport="socket", shard_addrs=shard_servers, timeout=60.0
    )
    yield index
    _close_routed(index)


@pytest.fixture(
    scope="session", params=["inproc", "spawn", "socket"], ids=lambda name: name
)
def routed_index(request):
    """Every router transport, as the same loaded-index interface."""
    return request.getfixturevalue(f"{request.param}_index")

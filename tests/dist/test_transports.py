"""Cross-transport equivalence: every router transport vs single-process mmap.

The tentpole guarantee of the shard-router layer is *bit-identity*: routed
execution answers every query surface with exactly the arrays, matches and
work counters single-process mmap mode produces — only wall-clock timing
(and the router-only fan-out record) may differ.  The suite sweeps all
three transports (``inproc``, ``spawn``, ``socket``) over the five public
query surfaces, plus a hypothesis sweep of random query sets on the
in-process transport.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: QueryStats fields that must agree bit-for-bit across execution modes.
_QUERY_STAT_FIELDS = (
    "filters_generated",
    "candidates_examined",
    "unique_candidates",
    "similarity_evaluations",
    "found",
    "repetitions_used",
    "shards_probed",
)

#: BatchQueryStats counters that must agree (timing and fan-out excluded).
_BATCH_STAT_FIELDS = (
    "num_queries",
    "distinct_filter_probes",
    "duplicate_filter_probes",
    "queries_deduplicated",
    "shards_probed",
)


def _assert_query_stats_equal(expected, actual):
    for field in _QUERY_STAT_FIELDS:
        assert getattr(actual, field) == getattr(expected, field), field


def _assert_batch_stats_equal(expected, actual):
    for field in _BATCH_STAT_FIELDS:
        assert getattr(actual, field) == getattr(expected, field), field
    assert actual.kernel.to_dict() == expected.kernel.to_dict()


def test_single_query_surface_matches_mmap(mmap_index, routed_index, dist_index):
    for query in dist_index.queries:
        for mode in ("first", "best"):
            expected_match, expected_stats = mmap_index.query(query, mode=mode)
            match, stats = routed_index.query(query, mode=mode)
            assert match == expected_match
            _assert_query_stats_equal(expected_stats, stats)


def test_query_batch_surface_matches_mmap(mmap_index, routed_index, dist_index):
    expected_results, expected_stats = mmap_index.query_batch(dist_index.queries)
    results, stats = routed_index.query_batch(dist_index.queries)
    assert results == expected_results
    _assert_batch_stats_equal(expected_stats, stats)


def test_query_candidates_surface_matches_mmap(mmap_index, routed_index, dist_index):
    for query in dist_index.queries:
        expected_set, expected_stats = mmap_index.query_candidates(query)
        candidates, stats = routed_index.query_candidates(query)
        assert candidates == expected_set
        _assert_query_stats_equal(expected_stats, stats)


def test_query_candidates_batch_surface_matches_mmap(
    mmap_index, routed_index, dist_index
):
    expected_sets, expected_stats = mmap_index.query_candidates_batch(
        dist_index.queries
    )
    candidate_sets, stats = routed_index.query_candidates_batch(dist_index.queries)
    assert candidate_sets == expected_sets
    _assert_batch_stats_equal(expected_stats, stats)


def test_candidates_arrays_surface_matches_mmap(mmap_index, routed_index, dist_index):
    expected_arrays, expected_stats = mmap_index.query_candidates_arrays_batch(
        dist_index.queries
    )
    arrays, stats = routed_index.query_candidates_arrays_batch(dist_index.queries)
    assert len(arrays) == len(expected_arrays)
    for expected, actual in zip(expected_arrays, arrays):
        assert np.array_equal(expected, actual)
    _assert_batch_stats_equal(expected_stats, stats)


def test_routed_fanout_covers_every_request(routed_index, dist_index):
    """The router's fan-out record accounts for the work the batch did."""
    from repro.dist import shard_router_of

    router = shard_router_of(routed_index)
    assert router is not None
    router.take_fanout_stats()  # drain whatever earlier tests left pending
    _arrays, stats = routed_index.query_candidates_arrays_batch(dist_index.queries)
    fanout = stats.fanout
    assert fanout.workers == router.num_workers
    assert fanout.total_requests > 0
    assert fanout.total_rows == sum(fanout.rows)
    snapshot = router.snapshot()
    assert snapshot["workers"] == router.num_workers
    assert sum(entry["requests"] for entry in snapshot["per_worker"]) >= (
        fanout.total_requests
    )


@given(
    queries=st.lists(
        st.frozensets(st.integers(min_value=0, max_value=439), min_size=1, max_size=10),
        min_size=1,
        max_size=8,
    )
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
def test_random_queries_equivalent_on_inproc(mmap_index, inproc_index, queries):
    expected_arrays, expected_stats = mmap_index.query_candidates_arrays_batch(queries)
    arrays, stats = inproc_index.query_candidates_arrays_batch(queries)
    for expected, actual in zip(expected_arrays, arrays):
        assert np.array_equal(expected, actual)
    assert stats.kernel.to_dict() == expected_stats.kernel.to_dict()
    assert stats.shards_probed == expected_stats.shards_probed

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_transactions


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.txt"
    exit_code = main(["generate", "DBLP", "-o", str(path), "--scale", "0.08", "--seed", "1"])
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiments_choices_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "figure99"])


class TestGenerate:
    def test_writes_transaction_file(self, dataset_file):
        collection = read_transactions(dataset_file)
        assert len(collection) > 0

    def test_unknown_profile(self, tmp_path, capsys):
        exit_code = main(["generate", "NOPE", "-o", str(tmp_path / "x.txt")])
        assert exit_code == 2
        assert "unknown dataset profile" in capsys.readouterr().out


class TestProfile:
    def test_prints_skew_and_rho(self, dataset_file, capsys):
        exit_code = main(["profile", str(dataset_file), "--samples", "200"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "gini" in output
        assert "ours (rho)" in output

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 2
        assert "no sets" in capsys.readouterr().out


class TestBuildAndQuery:
    def test_build_query_round_trip(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "index.json"
        exit_code = main(
            [
                "build",
                str(dataset_file),
                "-o",
                str(index_path),
                "--kind",
                "adversarial",
                "--b1",
                "0.6",
                "--repetitions",
                "4",
            ]
        )
        assert exit_code == 0
        assert index_path.exists()

        queries_path = tmp_path / "queries.txt"
        lines = dataset_file.read_text().splitlines()
        queries_path.write_text("\n".join(lines[:10]) + "\n")

        exit_code = main(["query", str(index_path), str(queries_path), "--mode", "best"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "queries returned a match" in output

    def test_build_correlated_kind(self, dataset_file, tmp_path):
        index_path = tmp_path / "correlated.json"
        exit_code = main(
            [
                "build",
                str(dataset_file),
                "-o",
                str(index_path),
                "--kind",
                "correlated",
                "--alpha",
                "0.7",
                "--repetitions",
                "3",
            ]
        )
        assert exit_code == 0
        assert index_path.exists()

    def test_build_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["build", str(empty), "-o", str(tmp_path / "x.json")]) == 2


class TestKernelStatsFlag:
    @pytest.fixture()
    def built_index(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "index.bin"
        exit_code = main(
            [
                "build",
                str(dataset_file),
                "-o",
                str(index_path),
                "--repetitions",
                "3",
                "--kernel-stats",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Kernel counters" in output
        assert "chain_probes" in output
        return index_path

    def test_query_prints_counter_table(self, built_index, dataset_file, capsys):
        exit_code = main(["query", str(built_index), str(dataset_file), "--kernel-stats"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Kernel counters" in output
        assert "paths_extended" in output
        assert "keys_folded" in output

    def test_query_batch_prints_counter_table(self, built_index, dataset_file, capsys):
        exit_code = main(
            ["query-batch", str(built_index), str(dataset_file), "--kernel-stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Kernel counters" in output
        assert "merge_rows" in output

    def test_no_flag_no_table(self, built_index, dataset_file, capsys):
        exit_code = main(["query", str(built_index), str(dataset_file)])
        assert exit_code == 0
        assert "Kernel counters" not in capsys.readouterr().out


class TestConvertAndInspect:
    @pytest.fixture()
    def built_index(self, dataset_file, tmp_path):
        index_path = tmp_path / "index.bin"
        exit_code = main(
            ["build", str(dataset_file), "-o", str(index_path), "--repetitions", "4"]
        )
        assert exit_code == 0
        return index_path

    def test_query_batch_on_saved_index(self, built_index, dataset_file, capsys):
        exit_code = main(
            ["query-batch", str(built_index), str(dataset_file), "--batch-size", "64"]
        )
        assert exit_code == 0
        assert "queries/s" in capsys.readouterr().out

    def test_convert_round_trips(self, built_index, dataset_file, tmp_path, capsys):
        converted = tmp_path / "converted.v3"
        assert main(["convert", str(built_index), "-o", str(converted)]) == 0
        assert "format v3" in capsys.readouterr().out
        assert main(["query", str(converted), str(dataset_file)]) == 0
        assert main(["query", str(converted), str(dataset_file), "--load-mode", "mmap"]) == 0

    def test_convert_downgrades_to_v2(self, built_index, dataset_file, tmp_path, capsys):
        import zipfile

        downgraded = tmp_path / "downgraded.bin"
        assert (
            main(["convert", str(built_index), "-o", str(downgraded), "--format", "2"])
            == 0
        )
        assert "format v2" in capsys.readouterr().out
        assert zipfile.is_zipfile(downgraded)
        assert main(["query", str(downgraded), str(dataset_file)]) == 0

    def test_convert_legacy_v1_file(self, built_index, dataset_file, tmp_path, capsys):
        from repro.core.serialization import _save_legacy_v1, load_index

        legacy = tmp_path / "legacy.json"
        _save_legacy_v1(load_index(built_index), legacy)
        converted = tmp_path / "from_v1.v3"
        assert main(["convert", str(legacy), "-o", str(converted)]) == 0
        assert "format v3" in capsys.readouterr().out
        assert main(["query", str(converted), str(dataset_file)]) == 0

    def test_convert_rejects_garbage(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"\x00\xffnot an index")
        assert main(["convert", str(garbage), "-o", str(tmp_path / "out.bin")]) == 2
        assert "cannot convert" in capsys.readouterr().out

    def test_inspect_prints_stats(self, built_index, capsys):
        assert main(["inspect", str(built_index)]) == 0
        output = capsys.readouterr().out
        assert "vectors" in output
        assert "disk bytes" in output
        assert "resident bytes" in output
        assert "v3" in output
        assert "key-range shards" in output

    def test_inspect_reports_v2_and_v1(self, built_index, tmp_path, capsys):
        from repro.core.config import PersistenceConfig
        from repro.core.serialization import _save_legacy_v1, load_index, save_index

        index = load_index(built_index)
        v2_path = tmp_path / "single_file.bin"
        save_index(index, v2_path, config=PersistenceConfig(format_version=2))
        assert main(["inspect", str(v2_path)]) == 0
        output = capsys.readouterr().out
        assert "v2" in output and "disk bytes" in output

        v1_path = tmp_path / "legacy.json"
        _save_legacy_v1(index, v1_path)
        assert main(["inspect", str(v1_path)]) == 0
        output = capsys.readouterr().out
        assert "v1" in output and "disk bytes" in output

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"\x00\xffnot an index")
        assert main(["inspect", str(garbage)]) == 2
        assert "cannot inspect" in capsys.readouterr().out

    def test_query_rejects_garbage(self, dataset_file, tmp_path, capsys):
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"PK\x03\x04truncated zip")
        assert main(["query", str(garbage), str(dataset_file)]) == 2
        assert "cannot load" in capsys.readouterr().out

    def test_query_batch_rejects_garbage(self, dataset_file, tmp_path, capsys):
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"\x00\xffnot an index")
        assert main(["query-batch", str(garbage), str(dataset_file)]) == 2
        assert "cannot load" in capsys.readouterr().out

    def test_build_no_compress(self, dataset_file, tmp_path):
        small = tmp_path / "compressed.bin"
        large = tmp_path / "plain.bin"
        assert (
            main(
                [
                    "build",
                    str(dataset_file),
                    "-o",
                    str(small),
                    "--repetitions",
                    "3",
                    "--format",
                    "2",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "build",
                    str(dataset_file),
                    "-o",
                    str(large),
                    "--repetitions",
                    "3",
                    "--format",
                    "2",
                    "--no-compress",
                ]
            )
            == 0
        )
        assert large.stat().st_size > small.stat().st_size

    def test_build_shards_and_mmap_query(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "index.v3"
        assert (
            main(
                [
                    "build",
                    str(dataset_file),
                    "-o",
                    str(index_path),
                    "--repetitions",
                    "3",
                    "--shards",
                    "4",
                ]
            )
            == 0
        )
        assert "4 shards" in capsys.readouterr().out
        assert index_path.is_dir()
        assert (
            main(
                [
                    "query-batch",
                    str(index_path),
                    str(dataset_file),
                    "--load-mode",
                    "mmap",
                    "--shard-workers",
                    "2",
                ]
            )
            == 0
        )
        assert "queries/s" in capsys.readouterr().out


class TestExperiments:
    def test_section71(self, capsys):
        assert main(["experiments", "section7.1"]) == 0
        assert "Section 7.1" in capsys.readouterr().out

    def test_section72(self, capsys):
        assert main(["experiments", "section7.2"]) == 0
        assert "Section 7.2" in capsys.readouterr().out

    def test_motivating(self, capsys):
        assert main(["experiments", "motivating"]) == 0
        assert "motivating" in capsys.readouterr().out

    def test_table1_small_scale(self, capsys):
        assert main(["experiments", "table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestServeParser:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["serve", "index.v3"])
        assert args.handler.__name__ == "_cmd_serve"
        assert args.name == "default"
        assert args.port == 8080
        assert args.batch_window_ms == 2.0
        assert args.load_mode == "mmap"
        assert args.extra_index is None

    def test_parses_all_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "a.v3",
                "--name",
                "primary",
                "--index",
                "b=b.v3",
                "--index",
                "c=c.v3",
                "--host",
                "0.0.0.0",
                "--port",
                "0",
                "--batch-window-ms",
                "0.5",
                "--max-batch-size",
                "128",
                "--max-pending",
                "100",
                "--retry-after",
                "3",
                "--load-mode",
                "ram",
                "--shard-workers",
                "2",
            ]
        )
        assert args.extra_index == ["b=b.v3", "c=c.v3"]
        assert args.batch_window_ms == 0.5
        assert args.max_batch_size == 128
        assert args.load_mode == "ram"

    def test_rejects_bad_load_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "a.v3", "--load-mode", "disk"])

    def test_malformed_extra_index_exits_2(self, capsys):
        assert main(["serve", "a.v3", "--index", "missing-equals"]) == 2
        assert "NAME=PATH" in capsys.readouterr().out

    def test_duplicate_names_exit_2(self, capsys):
        assert main(["serve", "a.v3", "--index", "default=b.v3"]) == 2
        assert "duplicate" in capsys.readouterr().out

    def test_invalid_config_exits_2(self, capsys):
        assert main(["serve", "a.v3", "--retry-after", "-1"]) == 2
        assert "cannot serve" in capsys.readouterr().out

    def test_missing_index_path_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.v3"
        assert main(["serve", str(missing), "--port", "0"]) == 2
        assert "cannot serve" in capsys.readouterr().out

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_transactions


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.txt"
    exit_code = main(["generate", "DBLP", "-o", str(path), "--scale", "0.08", "--seed", "1"])
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiments_choices_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "figure99"])


class TestGenerate:
    def test_writes_transaction_file(self, dataset_file):
        collection = read_transactions(dataset_file)
        assert len(collection) > 0

    def test_unknown_profile(self, tmp_path, capsys):
        exit_code = main(["generate", "NOPE", "-o", str(tmp_path / "x.txt")])
        assert exit_code == 2
        assert "unknown dataset profile" in capsys.readouterr().out


class TestProfile:
    def test_prints_skew_and_rho(self, dataset_file, capsys):
        exit_code = main(["profile", str(dataset_file), "--samples", "200"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "gini" in output
        assert "ours (rho)" in output

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 2
        assert "no sets" in capsys.readouterr().out


class TestBuildAndQuery:
    def test_build_query_round_trip(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "index.json"
        exit_code = main(
            [
                "build",
                str(dataset_file),
                "-o",
                str(index_path),
                "--kind",
                "adversarial",
                "--b1",
                "0.6",
                "--repetitions",
                "4",
            ]
        )
        assert exit_code == 0
        assert index_path.exists()

        queries_path = tmp_path / "queries.txt"
        lines = dataset_file.read_text().splitlines()
        queries_path.write_text("\n".join(lines[:10]) + "\n")

        exit_code = main(["query", str(index_path), str(queries_path), "--mode", "best"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "queries returned a match" in output

    def test_build_correlated_kind(self, dataset_file, tmp_path):
        index_path = tmp_path / "correlated.json"
        exit_code = main(
            [
                "build",
                str(dataset_file),
                "-o",
                str(index_path),
                "--kind",
                "correlated",
                "--alpha",
                "0.7",
                "--repetitions",
                "3",
            ]
        )
        assert exit_code == 0
        assert index_path.exists()

    def test_build_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["build", str(empty), "-o", str(tmp_path / "x.json")]) == 2


class TestExperiments:
    def test_section71(self, capsys):
        assert main(["experiments", "section7.1"]) == 0
        assert "Section 7.1" in capsys.readouterr().out

    def test_section72(self, capsys):
        assert main(["experiments", "section7.2"]) == 0
        assert "Section 7.2" in capsys.readouterr().out

    def test_motivating(self, capsys):
        assert main(["experiments", "motivating"]) == 0
        assert "motivating" in capsys.readouterr().out

    def test_table1_small_scale(self, capsys):
        assert main(["experiments", "table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out

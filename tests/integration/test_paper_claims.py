"""Integration tests that check the paper's headline claims end-to-end.

Each test corresponds to a specific claim in the paper (lemma, theorem or
worked example) and validates it either analytically (via the theory module)
or empirically (via the actual data structures on sampled data).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.data.distributions import ItemDistribution
from repro.similarity.measures import braun_blanquet
from repro.theory.bounds import correlated_pair_similarity_bounds
from repro.theory.rho import (
    balanced_correlated_rho,
    chosen_path_rho,
    solve_correlated_rho,
)


class TestLemma10:
    """Correlated pairs have similarity >= alpha/1.3; uncorrelated pairs stay
    below alpha/1.5 (with high probability, for large expected size)."""

    ALPHA = 0.6

    @pytest.fixture(scope="class")
    def distribution(self) -> ItemDistribution:
        # All p_i <= alpha/2 and expected size ~ 90 >> log n, per the lemma's
        # preconditions.
        return ItemDistribution(np.full(300, 0.3))

    def test_correlated_pairs_above_lower_bound(self, distribution):
        close_bound, _far_bound = correlated_pair_similarity_bounds(
            distribution.probabilities, self.ALPHA
        )
        rng = np.random.default_rng(0)
        violations = 0
        trials = 60
        for _ in range(trials):
            x = distribution.sample(rng)
            q = distribution.sample_correlated(x, self.ALPHA, rng)
            if braun_blanquet(x, q) < close_bound:
                violations += 1
        assert violations <= 3

    def test_uncorrelated_pairs_below_upper_bound(self, distribution):
        _close_bound, far_bound = correlated_pair_similarity_bounds(
            distribution.probabilities, self.ALPHA
        )
        rng = np.random.default_rng(1)
        violations = 0
        trials = 60
        for _ in range(trials):
            x = distribution.sample(rng)
            y = distribution.sample(rng)
            if braun_blanquet(x, y) > far_bound:
                violations += 1
        assert violations <= 3

    def test_separation_exists(self, distribution):
        close_bound, far_bound = correlated_pair_similarity_bounds(
            distribution.probabilities, self.ALPHA
        )
        assert far_bound < close_bound


class TestTheorem1Discussion:
    """'In the balanced case ... we recover the bounds of ChosenPath' and
    'for skew between these extremes we get strict improvements'."""

    def test_balanced_case_recovers_chosen_path(self):
        for p in (0.02, 0.1, 0.3):
            for alpha in (0.3, 0.6, 0.9):
                ours = solve_correlated_rho(np.full(800, p), alpha)
                chosen_path = balanced_correlated_rho(p, alpha)
                assert ours == pytest.approx(chosen_path, abs=1e-9)

    def test_skewed_case_strict_improvement(self):
        alpha = 2.0 / 3.0
        probabilities = np.concatenate([np.full(400, 0.3), np.full(400, 0.3 / 8.0)])
        ours = solve_correlated_rho(probabilities, alpha)
        expected_size = float(probabilities.sum())
        b2 = float(np.sum(probabilities**2)) / expected_size
        b1 = float(
            np.sum(probabilities**2 * (1 - alpha) + probabilities * alpha)
        ) / expected_size
        assert ours < chosen_path_rho(b1, b2) - 0.01

    def test_very_unbalanced_case_tiny_exponent(self):
        """Some p_i = Omega(1), some p_i = O(1/n), comparable masses: the
        exponent collapses towards 0 (prefix-filtering-like behaviour)."""
        n = 10**6
        frequent = np.full(100, 0.25)
        rare_count = 50_000
        rare_probability = 25.0 / rare_count  # comparable total mass, ~n^-0.9-ish per item
        probabilities = np.concatenate([frequent, np.full(rare_count, rare_probability)])
        rho = solve_correlated_rho(probabilities, 2.0 / 3.0)
        balanced = balanced_correlated_rho(0.25, 2.0 / 3.0)
        assert rho < 0.6 * balanced
        del n


class TestTheorem1EndToEnd:
    """The data structure returns the correlated vector with high probability
    while examining far fewer candidates than a linear scan."""

    def test_recall_and_work(self, skewed_distribution):
        alpha = 0.7
        rng = np.random.default_rng(3)
        dataset = [
            v if v else frozenset({0}) for v in skewed_distribution.sample_many(200, rng)
        ]
        index = CorrelatedIndex(
            skewed_distribution,
            config=CorrelatedIndexConfig(alpha=alpha, repetitions=6, seed=11),
        )
        index.build(dataset)

        hits = 0
        work = []
        trials = 40
        for target in range(trials):
            query = skewed_distribution.sample_correlated(dataset[target], alpha, rng)
            result, stats = index.query(query)
            work.append(stats.candidates_examined)
            if result == target:
                hits += 1
        assert hits / trials >= 0.8
        # Work far below repetitions * n (the trivial bound for scanning each
        # repetition's candidates without filtering).
        assert float(np.mean(work)) < 0.3 * len(dataset) * index.config.repetitions


class TestSpaceScaling:
    """Theorem 1/2: space is O(n^{1+rho}) filters — in particular the number
    of filters per vector should not explode as n grows moderately."""

    def test_filters_per_vector_growth_is_mild(self, skewed_distribution):
        rng = np.random.default_rng(5)
        per_vector = {}
        for n in (50, 200):
            dataset = [
                v if v else frozenset({0}) for v in skewed_distribution.sample_many(n, rng)
            ]
            index = CorrelatedIndex(
                skewed_distribution,
                config=CorrelatedIndexConfig(alpha=0.7, repetitions=3, seed=13),
            )
            stats = index.build(dataset)
            per_vector[n] = stats.filters_per_vector
        growth = per_vector[200] / max(per_vector[50], 1e-9)
        # n grew by 4x; with rho well below 1 the per-vector filter count
        # grows sublinearly in n (the constant-factor slack absorbs the small-n
        # effects of the delta boost and the 1/n stopping product).
        assert growth < 6.0

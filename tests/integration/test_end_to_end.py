"""End-to-end integration tests exercising the full public API together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BruteForceIndex,
    ChosenPathIndex,
    CorrelatedIndex,
    CorrelatedIndexConfig,
    MinHashIndex,
    PrefixFilterIndex,
    SetCollection,
    SimilarityPredicate,
    SkewAdaptiveIndex,
    SkewAdaptiveIndexConfig,
    similarity_self_join,
)
from repro.data.correlation import plant_correlated_pairs
from repro.data.io import read_transactions, write_transactions
from repro.similarity.measures import braun_blanquet


class TestDataToIndexPipeline:
    def test_generate_save_load_index_query(self, tmp_path, skewed_distribution):
        """Full pipeline: sample -> write -> read -> index from empirical
        frequencies -> query."""
        collection = SetCollection.from_distribution(skewed_distribution, count=80, seed=9)
        path = tmp_path / "dataset.txt"
        write_transactions(collection, path)
        loaded = read_transactions(path, dimension=collection.dimension)
        assert list(loaded) == list(collection)

        index = SkewAdaptiveIndex.from_collection(
            loaded, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=5, seed=1)
        )
        hits = 0
        for query_id in range(min(20, len(loaded))):
            result, _stats = index.query(loaded[query_id])
            if result is not None:
                assert braun_blanquet(index.get_vector(result), loaded[query_id]) >= 0.5
                hits += 1
        assert hits >= 15


class TestAllIndexesAgreeOnEasyQueries:
    def test_exact_duplicates_found_by_every_method(self, skewed_distribution):
        rng = np.random.default_rng(17)
        dataset = [v if v else frozenset({0}) for v in skewed_distribution.sample_many(60, rng)]
        query = dataset[7]

        indexes = {
            "skew_adaptive": SkewAdaptiveIndex(
                skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.6, repetitions=6, seed=2)
            ),
            "correlated": CorrelatedIndex(
                skewed_distribution,
                config=CorrelatedIndexConfig(alpha=0.78, repetitions=6, seed=2),
            ),
            "chosen_path": ChosenPathIndex(
                skewed_distribution.dimension, b1=0.6, b2=0.1, repetitions=6, seed=2
            ),
            "prefix": PrefixFilterIndex(0.6, item_frequencies=skewed_distribution.probabilities),
            "minhash": MinHashIndex(0.6, num_bands=24, rows_per_band=2, seed=2),
            "brute": BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.6)),
        }
        for name, index in indexes.items():
            index.build(dataset)
            result, _stats = index.query(query, mode="best")
            assert result is not None, f"{name} failed to answer an exact-duplicate query"
            assert braun_blanquet(index.get_vector(result), query) >= 0.6, name


class TestPlantedPairRecovery:
    def test_correlated_index_recovers_planted_pairs_via_join(self, skewed_distribution):
        """Plant correlated pairs, self-join with the correlated index, and
        check the planted pairs are among the reported ones."""
        alpha = 0.85
        vectors, pairs = plant_correlated_pairs(
            skewed_distribution, count=80, num_pairs=8, alpha=alpha, seed=3
        )
        index = CorrelatedIndex(
            skewed_distribution,
            config=CorrelatedIndexConfig(alpha=alpha, repetitions=6, seed=4),
        )
        index.build(vectors)
        predicate = SimilarityPredicate("braun_blanquet", alpha / 1.3)
        result = similarity_self_join(index, vectors, predicate)
        reported = result.pair_set()
        recovered = 0
        for pair in pairs:
            key = tuple(sorted((pair.first_index, pair.second_index)))
            actual_similarity = braun_blanquet(
                vectors[pair.first_index], vectors[pair.second_index]
            )
            if actual_similarity < predicate.threshold:
                recovered += 1  # the pair itself fails the predicate; not the index's fault
            elif key in reported:
                recovered += 1
        assert recovered >= 6

    def test_join_precision_is_exact(self, skewed_distribution):
        """Every reported pair genuinely meets the predicate (no false positives)."""
        vectors, _pairs = plant_correlated_pairs(
            skewed_distribution, count=60, num_pairs=5, alpha=0.8, seed=5
        )
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.55, repetitions=5, seed=6)
        )
        index.build(vectors)
        predicate = SimilarityPredicate("braun_blanquet", 0.55)
        result = similarity_self_join(index, vectors, predicate)
        for low, high, similarity in result.pairs:
            assert braun_blanquet(vectors[low], vectors[high]) >= 0.55
            assert similarity == pytest.approx(braun_blanquet(vectors[low], vectors[high]))


class TestWorkComparisonAcrossMethods:
    def test_skew_adaptive_beats_brute_force_work(self, skewed_distribution):
        rng = np.random.default_rng(23)
        dataset = [v if v else frozenset({0}) for v in skewed_distribution.sample_many(150, rng)]
        alpha = 0.75

        correlated = CorrelatedIndex(
            skewed_distribution, config=CorrelatedIndexConfig(alpha=alpha, repetitions=5, seed=7)
        )
        correlated.build(dataset)
        brute = BruteForceIndex(SimilarityPredicate("braun_blanquet", alpha / 1.3))
        brute.build(dataset)

        ours_work = []
        brute_work = []
        for target in range(25):
            query = skewed_distribution.sample_correlated(dataset[target], alpha, rng)
            _r1, stats_ours = correlated.query(query)
            _r2, stats_brute = brute.query(query, mode="first")
            ours_work.append(stats_ours.candidates_examined)
            brute_work.append(stats_brute.candidates_examined)
        assert float(np.mean(ours_work)) < float(np.mean(brute_work))

"""CLI surface of ``repro lint`` and ``tools/run_lint.py``."""

import json
from pathlib import Path

from repro.cli import lint_main, main

RACY = """import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        return self._items.get(key)
"""


def _write_racy(tmp_path: Path) -> Path:
    path = tmp_path / "src" / "repro" / "core" / "cache.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(RACY, encoding="utf-8")
    return path


def test_lint_exit_one_on_findings(tmp_path, capsys):
    _write_racy(tmp_path)
    code = main(["lint", "--root", str(tmp_path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "RPL002"


def test_lint_exit_zero_when_clean(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n", encoding="utf-8")
    code = main(["lint", "--root", str(tmp_path)])
    assert code == 0
    assert "ok:" in capsys.readouterr().out


def test_lint_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
        assert rule_id in out


def test_lint_update_baseline_then_clean(tmp_path, capsys):
    _write_racy(tmp_path)
    baseline = tmp_path / "baseline.json"
    code = main(
        [
            "lint",
            "--root",
            str(tmp_path),
            "--baseline",
            str(baseline),
            "--update-baseline",
            "--baseline-reason",
            "legacy race, tracked separately",
        ]
    )
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    code = main(["lint", "--root", str(tmp_path), "--baseline", str(baseline)])
    assert code == 0
    assert "1 baselined" in capsys.readouterr().out


def test_lint_update_baseline_requires_baseline_path(tmp_path, capsys):
    _write_racy(tmp_path)
    code = main(["lint", "--root", str(tmp_path), "--update-baseline"])
    assert code == 2
    assert "--baseline" in capsys.readouterr().err


def test_run_lint_entry_point_matches_subcommand(tmp_path, capsys):
    _write_racy(tmp_path)
    code = lint_main(["--root", str(tmp_path), "--format", "github"])
    assert code == 1
    assert capsys.readouterr().out.startswith("::error file=")

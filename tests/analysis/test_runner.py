"""Runner behaviour: suppressions, formats, and the clean-codebase gate."""

import json
from pathlib import Path

import pytest

from repro.analysis.formatters import render
from repro.analysis.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


RACY = """import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {{}}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        return self._items.get(key){suffix}
"""


def test_clean_codebase_stays_clean():
    """The committed source tree must lint clean with no baseline."""
    result = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    locations = [f.location() for f in result.findings]
    assert result.ok, f"repo lint regressed: {locations}"
    assert result.files_checked > 50


def test_finding_detected_without_suppression(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    assert not result.ok
    assert [f.rule_id for f in result.findings] == ["RPL002"]
    finding = result.findings[0]
    assert finding.path == "src/repro/core/cache.py"
    assert finding.fingerprint
    assert finding.scope == "Cache.get"


def test_suppression_with_reason_silences(tmp_path):
    _write(
        tmp_path,
        "src/repro/core/cache.py",
        RACY.format(suffix="  # repro-lint: disable=RPL002 -- benign racy read"),
    )
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    assert result.ok
    assert len(result.suppressed) == 1


def test_suppression_without_reason_is_reported(tmp_path):
    _write(
        tmp_path,
        "src/repro/core/cache.py",
        RACY.format(suffix="  # repro-lint: disable=RPL002"),
    )
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    assert not result.ok
    rule_ids = sorted(f.rule_id for f in result.findings)
    # The original finding survives AND the bare suppression is flagged.
    assert rule_ids == ["RPL000", "RPL002"]


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    _write(
        tmp_path,
        "src/repro/core/cache.py",
        RACY.format(suffix="  # repro-lint: disable=RPL004 -- wrong rule"),
    )
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    assert [f.rule_id for f in result.findings] == ["RPL002"]


def test_parse_error_is_reported(tmp_path):
    _write(tmp_path, "src/repro/core/broken.py", "def f(:\n")
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    assert not result.ok
    assert result.parse_errors


def test_json_format_is_machine_readable(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    payload = json.loads(render(result, "json"))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "RPL002"
    assert finding["path"] == "src/repro/core/cache.py"
    assert finding["fingerprint"]


def test_github_format_emits_error_annotations(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    output = render(result, "github")
    assert output.startswith("::error file=src/repro/core/cache.py,line=")
    assert "title=RPL002" in output


def test_text_format_mentions_summary(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    output = render(result, "text")
    assert "RPL002" in output
    assert "FAILED" in output
    assert "hint:" in output


def test_unknown_format_rejected(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path)
    with pytest.raises(ValueError):
        render(result, "xml")


def test_rule_selection_by_id(tmp_path):
    _write(tmp_path, "src/repro/core/cache.py", RACY.format(suffix=""))
    result = lint_paths([tmp_path / "src"], root=tmp_path, only=["RPL003"])
    assert result.ok  # RPL002 not selected, so nothing fires

"""Helpers for the static-analysis suite tests."""

import ast
from pathlib import Path

import pytest

from repro.analysis.source import SourceModule

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name: str, relpath: str) -> SourceModule:
    """Parse a fixture file under a pretended repo-relative path.

    Rules scope themselves by package (``serve/``, ``core/``), so the
    tests choose where the fixture pretends to live.
    """
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return SourceModule(
        path=path,
        relpath=relpath,
        source=source,
        tree=ast.parse(source, filename=name),
        lines=source.splitlines(),
    )


@pytest.fixture
def fixture_module():
    return load_fixture

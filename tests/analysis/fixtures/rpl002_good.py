"""RPL002 fixture: every access takes the lock (must stay silent)."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        with self._lock:
            return self._items.get(key)

    def snapshot(self):
        # Suppressed racy read with a documented reason.
        return dict(self._items)  # repro-lint: disable=RPL002 -- fixture: documented racy snapshot

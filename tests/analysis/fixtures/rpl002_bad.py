"""RPL002 fixture: guarded attribute touched without the lock (must fire)."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        return self._items.get(key)  # racy read outside the lock

    def clear(self):
        self._items = {}  # racy write outside the lock

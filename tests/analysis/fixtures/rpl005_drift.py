"""RPL005 fixture: the stats dataclass drifting from the contract."""


class QueryStats:
    filters_generated: int = 0
    candidates_examined: int = 0
    unique_candidates: int = 0
    similarity_evaluations: int = 0
    found: bool = False
    repetitions_used: int = 0
    shards_probed: int = 0
    from_cache: bool = False
    brand_new_field: int = 0  # not declared in the lint contract

"""RPL004 fixture: writes into memmap-backed arrays (must fire)."""

import numpy as np


def patch_counts(path, updates):
    counts = np.memmap(path, dtype=np.int64, mode="r+")  # writable mapping
    for index, value in updates:
        counts[index] = value  # in-place store into the mapping
    return counts


def unlock(view):
    view.setflags(write=True)  # re-enables writes on a read-only view
    view.posting_ids[0] = 0  # store into a postings-store field

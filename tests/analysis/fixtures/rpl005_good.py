"""RPL005 fixture: contract-conformant stats use (must stay silent)."""

from repro.core.stats import QueryStats


def probe(index, query):
    stats = QueryStats(filters_generated=0, repetitions_used=1)
    stats.similarity_evaluations = 1
    stats.candidates_examined += 2
    return index.probe(query), stats

"""RPL003 fixture: dtype contract violations (must fire)."""

import numpy as np


def make_arrays(values):
    raw = np.array(values)  # allocation without dtype
    weights = np.zeros(len(values), dtype=float)  # builtin dtype
    path_keys = np.asarray(values, dtype=np.int64)  # keys must be uint64
    posting_ids = np.asarray(values, dtype=np.uint32)  # ids must be int64
    return raw, weights, path_keys, posting_ids

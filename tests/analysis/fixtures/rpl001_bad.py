"""RPL001 fixture: blocking calls inside async def (must fire)."""

import asyncio
import json
import time


class Engine:
    def query_batch(self, queries, mode):
        return [], None


engine = Engine()


async def handle(request):
    payload = json.load(request)  # blocking parse of a file object
    time.sleep(0.01)  # blocking sleep on the event loop
    results, _stats = engine.query_batch(payload, "first")  # engine lane bypass
    await asyncio.sleep(0)
    return results

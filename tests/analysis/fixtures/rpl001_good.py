"""RPL001 fixture: the sanctioned patterns (must stay silent)."""

import asyncio


class Engine:
    def query_batch(self, queries, mode):
        return [], None


engine = Engine()


async def handle(loop, payload):
    results, _stats = await loop.run_in_executor(
        None, lambda: engine.query_batch(payload, "first")
    )
    await asyncio.sleep(0)
    return results


async def delegate(service, payload):
    # Awaited coroutine methods are not blocking calls.
    return await service.query(payload)

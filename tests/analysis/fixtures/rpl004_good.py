"""RPL004 fixture: sanctioned patterns (must stay silent)."""

import numpy as np


def open_counts(path):
    return np.memmap(path, dtype=np.int64, mode="r")  # read-only mapping


def materialise(view):
    copy = np.array(view, dtype=np.int64)  # copy first, then mutate freely
    copy[0] = 0
    return copy


class Store:
    def __init__(self):
        self.posting_ids = np.zeros(4, dtype=np.int64)
        self.posting_offsets = np.zeros(2, dtype=np.int64)

    def compact(self):
        # Compaction is the sanctioned in-place rebuild path.
        self.posting_ids[0] = 1
        self.posting_offsets[-1] = 1

"""RPL005 fixture: stats contract violations (must fire)."""

from repro.core.stats import QueryStats


def probe(index, query):
    stats = QueryStats(filters_generated=0, candidate_count=3)  # unknown kwarg
    stats.similarity_evals = 1  # misspelled field write
    return index.probe(query), stats

"""RPL003 fixture: registry-conformant allocations (must stay silent)."""

import numpy as np


def make_arrays(values):
    raw = np.array(values, dtype=np.int64)
    weights = np.zeros(len(values), dtype=np.float64)
    mask = np.zeros(len(values), dtype=bool)  # masks are exempt
    path_keys = np.asarray(values, dtype=np.uint64)
    posting_ids = np.asarray(values, dtype=np.int64)
    probabilities = np.asarray(values)  # dtype-less pass-through converter
    return raw, weights, mask, path_keys, posting_ids, probabilities

"""Baseline add/expire round-trip and validation."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.runner import lint_paths

RACY = """import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        return self._items.get(key)
"""

FIXED = RACY.replace(
    "    def get(self, key):\n        return self._items.get(key)\n",
    "    def get(self, key):\n        with self._lock:\n"
    "            return self._items.get(key)\n",
)


def _write(tmp_path: Path, source: str) -> Path:
    path = tmp_path / "src" / "repro" / "core" / "cache.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_baseline_round_trip_add_then_expire(tmp_path):
    _write(tmp_path, RACY)

    # 1. A fresh run fails with one finding.
    first = lint_paths([tmp_path / "src"], root=tmp_path)
    assert not first.ok and len(first.findings) == 1

    # 2. Grandfather it into a baseline; the same run is now clean.
    baseline = Baseline.from_findings(first.findings, reason="pre-existing race")
    baseline_path = tmp_path / "lint_baseline.json"
    baseline.save(baseline_path)
    second = lint_paths(
        [tmp_path / "src"], root=tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert second.ok
    assert len(second.grandfathered) == 1
    assert not second.findings

    # 3. Fixing the code expires the entry: the run fails as stale until
    #    the baseline is regenerated.
    _write(tmp_path, FIXED)
    third = lint_paths(
        [tmp_path / "src"], root=tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert not third.ok
    assert not third.findings
    assert len(third.stale_baseline) == 1
    assert third.stale_baseline[0].reason == "pre-existing race"

    # 4. Regenerating from the (now clean) findings empties the baseline.
    Baseline.from_findings(third.findings).save(baseline_path)
    fourth = lint_paths(
        [tmp_path / "src"], root=tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert fourth.ok
    assert not fourth.grandfathered


def test_baseline_fingerprints_survive_line_shifts(tmp_path):
    _write(tmp_path, RACY)
    first = lint_paths([tmp_path / "src"], root=tmp_path)
    baseline = Baseline.from_findings(first.findings, reason="pinned")

    # Prepend a comment block: every line number moves, the fingerprint
    # must not.
    _write(tmp_path, "# leading comment\n# another\n" + RACY)
    shifted = lint_paths([tmp_path / "src"], root=tmp_path, baseline=baseline)
    assert shifted.ok
    assert len(shifted.grandfathered) == 1
    assert shifted.grandfathered[0].line != first.findings[0].line


def test_baseline_requires_reasons(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [{"fingerprint": "abc", "rule": "RPL002", "path": "x.py"}],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="no reason"):
        Baseline.load(path)


def test_baseline_rejects_other_versions(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_missing_baseline_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "does-not-exist.json")
    assert baseline.entries == []

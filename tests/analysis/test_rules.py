"""Each RPL rule fires on its bad fixture and stays silent on the good one."""

import pytest

from repro.analysis.registry import all_rules, get_rule

CASES = [
    # (rule id, bad fixture, good fixture, pretended repo location)
    ("RPL001", "rpl001_bad.py", "rpl001_good.py", "src/repro/serve/fixture.py"),
    ("RPL002", "rpl002_bad.py", "rpl002_good.py", "src/repro/core/fixture.py"),
    ("RPL003", "rpl003_bad.py", "rpl003_good.py", "src/repro/core/fixture.py"),
    ("RPL004", "rpl004_bad.py", "rpl004_good.py", "src/repro/core/fixture.py"),
    ("RPL005", "rpl005_bad.py", "rpl005_good.py", "src/repro/core/fixture.py"),
]


def test_registry_holds_all_five_rule_families():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    for expected in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
        assert expected in ids


def test_rules_carry_documentation():
    for rule in all_rules():
        assert rule.title, rule.rule_id
        assert rule.rationale, rule.rule_id
        assert rule.hint, rule.rule_id


@pytest.mark.parametrize("rule_id, bad, good, relpath", CASES)
def test_bad_fixture_fires(fixture_module, rule_id, bad, good, relpath):
    rule = get_rule(rule_id)
    module = fixture_module(bad, relpath)
    assert rule.applies_to(module)
    findings = list(rule.check(module))
    assert findings, f"{rule_id} found nothing in {bad}"
    assert all(f.rule_id == rule_id for f in findings)
    for finding in findings:
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule_id, bad, good, relpath", CASES)
def test_good_fixture_stays_silent(fixture_module, rule_id, bad, good, relpath):
    rule = get_rule(rule_id)
    module = fixture_module(good, relpath)
    findings = [
        f
        for f in rule.check(module)
        # The good fixtures carry deliberate suppressed lines; the raw
        # rule still reports them (suppression is the runner's job).
        if "repro-lint" not in (module.lines[f.line - 1] if f.line <= len(module.lines) else "")
    ]
    assert findings == []


def test_rpl001_respects_package_scope(fixture_module):
    rule = get_rule("RPL001")
    module = fixture_module("rpl001_bad.py", "src/repro/core/fixture.py")
    assert not rule.applies_to(module)


def test_rpl001_specific_detections(fixture_module):
    rule = get_rule("RPL001")
    module = fixture_module("rpl001_bad.py", "src/repro/serve/fixture.py")
    messages = [f.message for f in rule.check(module)]
    assert any("json.load" in m for m in messages)
    assert any("time.sleep" in m for m in messages)
    assert any("query_batch" in m for m in messages)


def test_rpl002_reports_read_and_write(fixture_module):
    rule = get_rule("RPL002")
    module = fixture_module("rpl002_bad.py", "src/repro/core/fixture.py")
    messages = [f.message for f in rule.check(module)]
    assert any("read of lock-guarded" in m for m in messages)
    assert any("write of lock-guarded" in m for m in messages)


def test_rpl003_contract_and_allocation(fixture_module):
    rule = get_rule("RPL003")
    module = fixture_module("rpl003_bad.py", "src/repro/core/fixture.py")
    messages = [f.message for f in rule.check(module)]
    assert any("without an explicit dtype" in m for m in messages)
    assert any("builtin dtype 'float'" in m for m in messages)
    assert any("declared uint64" in m for m in messages)
    assert any("declared int64" in m for m in messages)


def test_rpl003_covers_kernels_subpackage(fixture_module):
    """The kernels subpackage sits inside core/, so RPL003 applies there."""
    rule = get_rule("RPL003")
    module = fixture_module("rpl003_bad.py", "src/repro/core/kernels/fixture.py")
    assert rule.applies_to(module)
    assert any("without an explicit dtype" in f.message for f in rule.check(module))


def test_rpl004_all_three_detections(fixture_module):
    rule = get_rule("RPL004")
    module = fixture_module("rpl004_bad.py", "src/repro/core/fixture.py")
    messages = [f.message for f in rule.check(module)]
    assert any("writable mode" in m for m in messages)
    assert any("setflags" in m for m in messages)
    assert any("memmap-bound array" in m for m in messages)
    assert any("postings-store field" in m for m in messages)


def test_rpl005_drift_detection(fixture_module):
    rule = get_rule("RPL005")
    module = fixture_module("rpl005_drift.py", "src/repro/core/stats.py")
    messages = [f.message for f in rule.check(module)]
    assert any("brand_new_field" in m for m in messages)

"""Unit tests for the serving metrics primitives."""

from __future__ import annotations

import pytest

from repro.serve import EndpointMetrics, LatencyWindow, ServiceMetrics


class TestLatencyWindow:
    def test_empty_snapshot_is_zeroed(self):
        snapshot = LatencyWindow().snapshot()
        assert snapshot == {
            "count": 0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_percentiles_are_nearest_rank(self):
        window = LatencyWindow(capacity=1000)
        for i in range(1, 101):  # 1ms .. 100ms
            window.record(i / 1000.0)
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == pytest.approx(50.0)
        assert snapshot["p99_ms"] == pytest.approx(99.0)
        assert snapshot["max_ms"] == pytest.approx(100.0)
        assert snapshot["mean_ms"] == pytest.approx(50.5)

    def test_window_is_bounded_but_count_is_total(self):
        window = LatencyWindow(capacity=4)
        for i in range(100):
            window.record(0.001 * (i + 1))
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        # Only the 4 most recent samples remain: 97..100 ms.
        assert snapshot["p50_ms"] == pytest.approx(98.0)
        assert snapshot["max_ms"] == pytest.approx(100.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)


class TestEndpointMetrics:
    def test_shed_requests_are_counted_but_not_timed(self):
        metrics = EndpointMetrics()
        metrics.record(0.010)
        metrics.record(0.000001, shed=True)
        metrics.record(0.020, error=True)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["errors"] == 1
        assert snapshot["shed"] == 1
        # The shed refusal does not drag the percentiles down.
        assert snapshot["latency"]["count"] == 2
        assert snapshot["latency"]["p50_ms"] == pytest.approx(10.0)


class TestServiceMetrics:
    def test_lazy_creation_and_sorted_snapshot(self):
        service = ServiceMetrics(latency_window=16)
        service.endpoint("/query").record(0.001)
        service.endpoint("/healthz").record(0.0001)
        snapshot = service.snapshot()
        assert list(snapshot) == ["/healthz", "/query"]
        assert service.endpoint("/query") is service.endpoint("/query")


class TestPrometheusExposition:
    def test_families_render_with_labels_and_help(self):
        metrics = ServiceMetrics()
        metrics.endpoint("/query").record(0.010)
        metrics.endpoint("/query").record(0.020, error=True)
        metrics.endpoint("/healthz").record(0.001)
        text = metrics.prometheus_text()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{endpoint="/query"} 2' in text
        assert 'repro_errors_total{endpoint="/query"} 1' in text
        assert 'repro_requests_total{endpoint="/healthz"} 1' in text
        assert 'quantile="0.5"' in text and 'quantile="0.99"' in text
        assert text.endswith("\n")
        # Every non-comment line is "name{labels} value" or "name value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # parses as a number
            assert name_part.startswith("repro_")

    def test_shed_requests_do_not_pollute_latency(self):
        metrics = ServiceMetrics()
        metrics.endpoint("/query").record(0.0, shed=True)
        text = metrics.prometheus_text()
        assert 'repro_shed_total{endpoint="/query"} 1' in text
        assert 'repro_request_seconds_total{endpoint="/query"} 0' in text

    def test_extra_families_are_appended(self):
        metrics = ServiceMetrics()
        text = metrics.prometheus_text(
            [("repro_uptime_seconds", "gauge", "Uptime.", [({}, 12.5)])]
        )
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert "repro_uptime_seconds 12.5" in text

    def test_label_values_are_escaped(self):
        from repro.serve.metrics import render_prometheus

        text = render_prometheus(
            [("repro_x", "gauge", "Escaping.", [({"name": 'a"b\\c\nd'}, 1.0)])]
        )
        assert 'name="a\\"b\\\\c\\nd"' in text

"""Socket-level tests: the asyncio HTTP front end end to end.

The ``server`` fixture runs the real server on an ephemeral port; tests
talk to it with :mod:`http.client` over real TCP connections, so request
framing, keep-alive, error paths and the coalescing visible on ``/stats``
are exercised exactly as a client would see them.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import re
import socket
import subprocess
import sys
from pathlib import Path

import pytest


def test_healthz_and_stats_shape(server):
    status, _, body = server.request("GET", "/healthz")
    assert status == 200
    assert body == {"status": "ok", "indexes": {"default": "ok"}}

    status, _, stats = server.request("GET", "/stats")
    assert status == 200
    assert stats["config"]["batch_window_ms"] == 2.0
    assert "/healthz" in stats["endpoints"]
    assert stats["indexes"]["default"]["status"] == "ok"
    assert stats["indexes"]["default"]["load_mode"] == "mmap"


def test_query_over_http_matches_direct_query(server, saved_index):
    query = saved_index.dataset[0]
    status, _, body = server.request("POST", "/query", {"query": sorted(query)})
    assert status == 200
    expected_match, expected_stats = saved_index.index.query(query)
    assert body["match"] == expected_match
    assert body["found"] == expected_stats.found
    assert body["stats"]["found"] == expected_stats.found


def test_concurrent_clients_coalesce_and_results_match(server, saved_index):
    """Many independent connections: every result must be bit-identical to
    an un-coalesced query, and /stats must show that coalescing happened."""
    queries = [saved_index.dataset[i % len(saved_index.dataset)] for i in range(64)]

    def one(query):
        return server.request("POST", "/query", {"query": sorted(query)})

    with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
        responses = list(pool.map(one, queries))

    for query, (status, _, body) in zip(queries, responses):
        assert status == 200
        assert body["match"] == saved_index.index.query(query)[0]

    _, _, stats = server.request("GET", "/stats")
    entry = stats["indexes"]["default"]
    assert entry["queries_executed"] >= 64
    assert entry["coalesced_calls"] >= 1, "a 16-client burst must coalesce"
    assert entry["mean_batch_occupancy"] > 1.0
    assert entry["engine_calls"] < 64
    latency = stats["endpoints"]["/query"]["latency"]
    assert latency["count"] >= 64
    assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]


def test_query_batch_and_similarity_join_over_http(server, saved_index):
    queries = [sorted(q) for q in saved_index.dataset[:6]]
    status, _, body = server.request(
        "POST", "/query-batch", {"queries": queries, "mode": "best"}
    )
    assert status == 200
    assert len(body["results"]) == 6
    assert len(body["stats"]["per_query"]) == 6

    status, _, body = server.request(
        "POST", "/similarity-join", {"probes": queries[:3], "threshold": 0.7}
    )
    assert status == 200
    assert body["num_probes"] == 3
    assert isinstance(body["pairs"], list)


def test_keep_alive_reuses_one_connection(server, saved_index):
    conn = server.connect()
    try:
        for i in range(3):
            status, headers, _ = server.request(
                "POST",
                "/query",
                {"query": sorted(saved_index.dataset[i])},
                connection=conn,
            )
            assert status == 200
            assert headers["connection"] == "keep-alive"
    finally:
        conn.close()


def test_http_error_statuses(server):
    status, _, _ = server.request("POST", "/does-not-exist", {})
    assert status == 404

    status, headers, _ = server.request("GET", "/query")
    assert status == 405
    assert headers["allow"] == "POST"

    status, _, _ = server.request("POST", "/healthz", {})
    assert status == 405

    conn = server.connect()
    try:
        conn.request(
            "POST", "/query", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        assert conn.getresponse().status == 400
    finally:
        conn.close()

    status, _, body = server.request("POST", "/query", {"query": "nope"})
    assert status == 400
    assert "error" in body

    # A 400 from a bad request must not poison the next request (keep-alive).
    status, _, _ = server.request("GET", "/healthz")
    assert status == 200


def test_oversized_body_gets_413(make_server):
    harness = make_server(max_body_bytes=1024)
    big = {"query": list(range(2000))}
    status, _, body = harness.request("POST", "/query", big)
    assert status == 413
    assert "exceeds" in body["error"]


def test_malformed_request_line_gets_400_and_close(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=30) as raw:
        raw.sendall(b"NONSENSE\r\n\r\n")
        data = raw.recv(65536)
    assert data.startswith(b"HTTP/1.1 400 ")


def test_shed_request_gets_429_over_http(make_server, saved_index):
    """Saturate a max_pending_queries=1 server and assert at least one 429
    with an integer Retry-After while every 200 is still a correct answer."""
    harness = make_server(batch_window_ms=0.0, max_pending_queries=1)
    queries = [saved_index.dataset[i % 50] for i in range(200)]

    def one(query):
        return harness.request("POST", "/query", {"query": sorted(query)})

    with concurrent.futures.ThreadPoolExecutor(max_workers=32) as pool:
        responses = list(pool.map(one, queries))

    statuses = [status for status, _, _ in responses]
    assert set(statuses) <= {200, 429}
    assert 429 in statuses, "32 clients against max_pending=1 must shed"
    for status, headers, body in responses:
        if status == 429:
            assert int(headers["retry-after"]) >= 1
            assert body["retry_after_seconds"] > 0
            assert "match" not in body, "shed responses carry no partial result"
        else:
            assert body["found"] in (True, False)


def test_cli_serve_subprocess_end_to_end(saved_index):
    """`python -m repro serve` comes up, answers queries, and dies cleanly."""
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(saved_index.path),
            "--port",
            "0",
            "--batch-window-ms",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        ready_line = process.stdout.readline()
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", ready_line)
        assert match, f"unexpected startup line: {ready_line!r}"
        port = int(match.group(1))

        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request(
                "POST",
                "/query",
                body=json.dumps({"query": sorted(saved_index.dataset[0])}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 200
            assert body["match"] == saved_index.index.query(saved_index.dataset[0])[0]
        finally:
            conn.close()
    finally:
        process.terminate()
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=30)


def test_metrics_endpoint_prometheus_text(server, saved_index):
    server.request("POST", "/query", {"query": sorted(saved_index.dataset[0])})

    conn = server.connect()
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        assert response.status == 200
        assert response.getheader("Content-Type", "").startswith("text/plain")
        assert 'repro_requests_total{endpoint="/query"} 1' in body
        assert 'repro_index_up{index="default"} 1' in body
        assert 'repro_engine_queries_total{index="default"} 1' in body
        assert "# TYPE repro_uptime_seconds gauge" in body
        assert "# TYPE repro_kernel_ops_total counter" in body
        assert 'repro_kernel_ops_total{index="default",stage="paths_extended"}' in body
        assert 'repro_kernel_ops_total{index="default",stage="dedupe_hits"}' in body
        # The scrape itself is JSON-free: every line is a comment or sample.
        assert not body.lstrip().startswith("{")
    finally:
        conn.close()

    # The scrape is measured like any other endpoint.
    _, _, stats = server.request("GET", "/stats")
    assert stats["endpoints"]["/metrics"]["requests"] >= 1


def test_metrics_rejects_post(server):
    status, headers, _ = server.request("POST", "/metrics", {})
    assert status == 405
    assert headers["allow"] == "GET"


def _spawn_serve(saved_index, *extra_args):
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(saved_index.path),
            "--port",
            "0",
            "--batch-window-ms",
            "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def test_sigterm_drains_and_exits_zero(saved_index):
    """SIGTERM: in-flight work finishes, the drain is logged, exit code 0."""
    import http.client
    import signal as signal_module

    process = _spawn_serve(saved_index)
    try:
        ready_line = process.stdout.readline()
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", ready_line)
        assert match, f"unexpected startup line: {ready_line!r}"
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request(
                "POST",
                "/query",
                body=json.dumps({"query": sorted(saved_index.dataset[0])}),
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 200
        finally:
            conn.close()

        process.send_signal(signal_module.SIGTERM)
        output, _ = process.communicate(timeout=60)
        assert process.returncode == 0, f"exit {process.returncode}: {output!r}"
        assert "shutting down (drained)" in output

        # The socket is really gone.
        with pytest.raises(OSError):
            probe = socket.create_connection(("127.0.0.1", port), timeout=1)
            probe.close()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

"""Fixtures for the serving-layer tests.

``saved_index`` builds one small skew-adaptive index and saves it in the v3
sharded format once per session; ``ServerHarness`` runs the real asyncio
HTTP server on an ephemeral port inside a background thread so the (sync)
tests can talk to it with plain :mod:`http.client` connections — the same
code path a real client exercises, including keep-alive.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import pytest

from repro import SkewAdaptiveIndex, save_index
from repro.core.config import SkewAdaptiveIndexConfig
from repro.serve import HttpServer, IndexSpec, QueryService, ServeConfig


@dataclass
class SavedIndex:
    """A built index, its on-disk v3 path, and the dataset behind it."""

    path: Path
    index: SkewAdaptiveIndex
    dataset: list[frozenset[int]]


@pytest.fixture(scope="session")
def saved_index(tmp_path_factory, skewed_distribution, skewed_dataset) -> SavedIndex:
    index = SkewAdaptiveIndex(
        skewed_distribution,
        config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=7),
    )
    index.build(skewed_dataset)
    path = tmp_path_factory.mktemp("serve") / "index.v3"
    save_index(index, path)
    return SavedIndex(path=path, index=index, dataset=skewed_dataset)


@dataclass
class ServerHarness:
    """A live server on an ephemeral port, driven from a background thread."""

    specs: Sequence[IndexSpec]
    config: ServeConfig
    port: int = 0
    service: QueryService | None = None
    loop: asyncio.AbstractEventLoop | None = None
    _thread: threading.Thread | None = None
    _ready: threading.Event = field(default_factory=threading.Event)
    _stop: asyncio.Event | None = None
    _error: BaseException | None = None

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=60), "server did not come up"
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = None
        try:
            self.service = QueryService(self.specs, self.config)
            await self.service.start()
            server = HttpServer(self.service, self.config.host, self.config.port)
            await server.start()
            self.port = server.port
        except BaseException as error:  # surface startup failures to the test
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await server.close()
        await self.service.close()

    def stop(self) -> None:
        if self.loop is not None and self._stop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60)
            assert not self._thread.is_alive(), "server thread did not shut down"

    def connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)

    def request(
        self,
        method: str,
        path: str,
        payload: Any | None = None,
        *,
        connection: http.client.HTTPConnection | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One request; returns ``(status, lowercase-headers, json-or-None)``."""
        conn = connection if connection is not None else self.connect()
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = response.read()
        headers = {name.lower(): value for name, value in response.getheaders()}
        if connection is None:
            conn.close()
        return response.status, headers, json.loads(data) if data else None


@pytest.fixture
def make_server(saved_index: SavedIndex):
    """Factory for live servers over ``saved_index`` with custom knobs."""
    harnesses: list[ServerHarness] = []

    def factory(**config_kwargs: Any) -> ServerHarness:
        config_kwargs.setdefault("port", 0)
        harness = ServerHarness(
            specs=[IndexSpec(name="default", path=str(saved_index.path))],
            config=ServeConfig(**config_kwargs),
        ).start()
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def server(make_server):
    """A running server with a short admission window (the common case)."""
    return make_server(batch_window_ms=2.0, max_batch_queries=64)

"""Unit tests for the micro-batching admission loop.

These drive :class:`MicroBatcher` against a fake engine runner that records
every call, so the coalescing, capping, shedding and scatter behaviour can
be asserted exactly without index-dependent timing.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.stats import BatchQueryStats, QueryStats
from repro.serve import MicroBatcher, Overloaded


def run(coro):
    """Run an async test body with a global hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class RecordingRunner:
    """A fake engine: returns each query as its own result, records calls."""

    def __init__(self, gate: threading.Event | None = None):
        self.calls: list[tuple[list[frozenset[int]], str]] = []
        self.gate = gate

    def __call__(self, queries, mode, allow_partial=False, deadline=None):
        if self.gate is not None:
            assert self.gate.wait(timeout=60)
        queries = list(queries)
        self.calls.append((queries, mode))
        stats = BatchQueryStats(
            num_queries=len(queries),
            per_query=[QueryStats(found=True, filters_generated=1) for _ in queries],
            elapsed_seconds=0.001,
        )
        return queries, stats


def q(*items: int) -> frozenset[int]:
    return frozenset(items)


def test_concurrent_jobs_coalesce_into_one_engine_call():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.05, max_batch_queries=64)
        futures = [batcher.submit([q(i)]) for i in range(5)]
        results = await asyncio.gather(*futures)
        await batcher.close()
        return runner, batcher, results

    runner, batcher, results = run(body())
    assert len(runner.calls) == 1
    assert runner.calls[0][0] == [q(i) for i in range(5)]
    # Each job got exactly its own slice back, in order.
    for i, (job_results, per_query, _fanout) in enumerate(results):
        assert job_results == [q(i)]
        assert len(per_query) == 1 and per_query[0].found
    assert batcher.stats.engine_calls == 1
    assert batcher.stats.coalesced_calls == 1
    assert batcher.stats.occupancy_max == 5
    assert batcher.stats.mean_occupancy == 5.0


def test_window_respects_max_batch_size():
    """A forming batch dispatches at the query cap, not at the window."""

    async def body():
        runner = RecordingRunner()
        # The window is far longer than the test timeout tolerates if the
        # cap were ignored: dispatch must happen because the cap is hit.
        batcher = MicroBatcher(runner, window_seconds=5.0, max_batch_queries=4)
        loop = asyncio.get_running_loop()
        start = loop.time()
        futures = [batcher.submit([q(i)]) for i in range(8)]
        await asyncio.gather(*futures)
        elapsed = loop.time() - start
        await batcher.close()
        return runner, elapsed

    runner, elapsed = run(body())
    assert elapsed < 2.0, "batches must dispatch at the size cap, not the window"
    assert all(len(queries) <= 4 for queries, _ in runner.calls)
    assert [len(queries) for queries, _ in runner.calls] == [4, 4]
    # Arrival order is preserved across the split.
    flat = [query for queries, _ in runner.calls for query in queries]
    assert flat == [q(i) for i in range(8)]


def test_zero_window_disables_coalescing():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.0)
        futures = [batcher.submit([q(i)]) for i in range(5)]
        await asyncio.gather(*futures)
        await batcher.close()
        return runner, batcher

    runner, batcher = run(body())
    assert len(runner.calls) == 5
    assert batcher.stats.engine_calls == 5
    assert batcher.stats.coalesced_calls == 0
    assert batcher.stats.occupancy_max == 1


def test_jobs_are_never_split_across_engine_calls():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.05, max_batch_queries=4)
        first = batcher.submit([q(1), q(2), q(3)])
        second = batcher.submit([q(4), q(5), q(6)])
        results = await asyncio.gather(first, second)
        await batcher.close()
        return runner, results

    runner, results = run(body())
    # 3 + 3 > 4, so the second job must wait for its own engine call —
    # never be split to top up the first.
    assert [len(queries) for queries, _ in runner.calls] == [3, 3]
    assert results[0][0] == [q(1), q(2), q(3)]
    assert results[1][0] == [q(4), q(5), q(6)]


def test_modes_get_separate_engine_calls():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.05)
        futures = [
            batcher.submit([q(1)], mode="first"),
            batcher.submit([q(2)], mode="best"),
            batcher.submit([q(3)], mode="first"),
        ]
        results = await asyncio.gather(*futures)
        await batcher.close()
        return runner, results

    runner, results = run(body())
    assert sorted((mode, len(queries)) for queries, mode in runner.calls) == [
        ("best", 1),
        ("first", 2),
    ]
    assert results[0][0] == [q(1)]
    assert results[1][0] == [q(2)]
    assert results[2][0] == [q(3)]


def test_overload_sheds_and_shed_jobs_never_execute():
    async def body():
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, window_seconds=0.0, max_pending_queries=2)
        first = batcher.submit([q(1)])  # occupies the lane (runner blocked)
        with pytest.raises(Overloaded) as excinfo:
            batcher.submit([q(2), q(3)])  # 1 in flight + 2 > 2 -> shed
        gate.set()
        await first
        await batcher.close()
        return runner, batcher, excinfo.value

    runner, batcher, error = run(body())
    assert error.retry_after_seconds >= 0.05
    assert batcher.stats.jobs_shed == 1
    # The shed job never reached the engine: no partial results exist.
    assert [queries for queries, _ in runner.calls] == [[q(1)]]


def test_oversized_job_admitted_when_idle():
    """A job bigger than the whole bound must still run when nothing else is
    in flight — otherwise it could never be served at all."""

    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.0, max_pending_queries=2)
        results, per_query, _ = await batcher.submit([q(1), q(2), q(3)])
        await batcher.close()
        return results, per_query

    results, per_query = run(body())
    assert results == [q(1), q(2), q(3)]
    assert len(per_query) == 3


def test_engine_failure_is_scattered_not_fatal():
    async def body():
        calls = []

        def runner(queries, mode, allow_partial=False, deadline=None):
            calls.append(list(queries))
            if len(calls) == 1:
                raise RuntimeError("engine exploded")
            stats = BatchQueryStats(
                num_queries=len(queries),
                per_query=[QueryStats() for _ in queries],
            )
            return list(queries), stats

        batcher = MicroBatcher(runner, window_seconds=0.0)
        with pytest.raises(RuntimeError, match="engine exploded"):
            await batcher.submit([q(1)])
        # The batcher keeps serving after a failed call.
        results, _, _ = await batcher.submit([q(2)])
        await batcher.close()
        return results

    assert run(body()) == [q(2)]


def test_close_fails_queued_jobs():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=30.0)
        future = batcher.submit([q(1)])
        await batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            await future
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit([q(2)])
        return runner

    runner = run(body())
    assert runner.calls == []


def test_retry_after_estimate_is_clamped():
    async def body():
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, window_seconds=0.0)
        before_any_data = batcher.estimate_retry_after()
        await batcher.submit([q(1)])
        idle_estimate = batcher.estimate_retry_after()
        await batcher.close()
        return before_any_data, idle_estimate

    before_any_data, idle_estimate = run(body())
    assert before_any_data == 1.0
    # Idle with throughput data: the backlog estimate is 0, clamped up.
    assert idle_estimate == 0.05


def test_constructor_validation():
    def runner(queries, mode, allow_partial=False, deadline=None):  # pragma: no cover
        raise AssertionError

    with pytest.raises(ValueError, match="window_seconds"):
        MicroBatcher(runner, window_seconds=-0.001)
    with pytest.raises(ValueError, match="max_batch_queries"):
        MicroBatcher(runner, max_batch_queries=0)
    with pytest.raises(ValueError, match="max_pending_queries"):
        MicroBatcher(runner, max_pending_queries=0)

"""Tests for :class:`QueryService` — the transport-independent core.

The service is driven directly (no socket), which makes the guarantees
easy to state exactly: coalesced results are bit-identical to un-coalesced
``query`` calls, shed requests map to 429 with a Retry-After hint, and
``/healthz`` flips to 503 for exactly the duration of a reload.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve import ApiError, IndexSpec, Overloaded, QueryService, ServeConfig
from repro.serve.service import _ServedIndex


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


def make_service(saved_index, **config_kwargs) -> QueryService:
    defaults = dict(port=0, batch_window_ms=2.0, max_batch_queries=64)
    defaults.update(config_kwargs)
    return QueryService(
        [IndexSpec(name="default", path=str(saved_index.path))],
        ServeConfig(**defaults),
    )


def test_concurrent_queries_bit_identical_to_uncoalesced(saved_index):
    """Coalesced answers equal ``index.query`` run one query at a time."""
    queries = saved_index.dataset[:40]

    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            payloads = await asyncio.gather(
                *(service.query({"query": sorted(query)}) for query in queries)
            )
        finally:
            await service.close()
        return payloads

    payloads = run(body())
    for query, payload in zip(queries, payloads):
        expected_match, expected_stats = saved_index.index.query(query)
        assert payload["match"] == expected_match
        assert payload["found"] == expected_stats.found
    # The burst arrived concurrently, so at least some of it coalesced.
    assert len(payloads) == len(queries)


def test_query_batch_matches_individual_queries(saved_index):
    queries = saved_index.dataset[:10]

    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            payload = await service.query_batch(
                {"queries": [sorted(query) for query in queries], "mode": "best"}
            )
        finally:
            await service.close()
        return payload

    payload = run(body())
    assert len(payload["results"]) == len(queries)
    for query, match in zip(queries, payload["results"]):
        assert match == saved_index.index.query(query, mode="best")[0]
    assert payload["num_found"] == sum(
        1 for query in queries if saved_index.index.query(query, mode="best")[1].found
    )


def test_shed_request_gets_429_with_retry_after(saved_index):
    """An overloaded index answers 429 + Retry-After and never executes."""

    async def body():
        gate = threading.Event()
        service = make_service(saved_index, batch_window_ms=0.0, max_pending_queries=1)
        await service.start()
        served = service._indexes["default"]
        real_run_batch = served.batcher._run_batch
        executed: list[list[frozenset[int]]] = []

        def gated_run_batch(queries, mode, allow_partial=False, deadline=None):
            assert gate.wait(timeout=60)
            executed.append(list(queries))
            return real_run_batch(queries, mode, allow_partial, deadline)

        served.batcher._run_batch = gated_run_batch
        try:
            first = served.batcher.submit([saved_index.dataset[0]])
            with pytest.raises(ApiError) as excinfo:
                await service.query({"query": sorted(saved_index.dataset[1])})
            gate.set()
            await first
        finally:
            await service.close()
        return excinfo.value, executed

    error, executed = run(body())
    assert error.status == 429
    assert int(error.headers["Retry-After"]) >= 1
    # The shed query never reached the engine: no partial results.
    assert executed == [[saved_index.dataset[0]]]


def test_configured_retry_after_overrides_estimate(saved_index):
    async def body():
        service = make_service(saved_index, retry_after_seconds=7.0)
        await service.start()
        try:
            error = service._shed(Overloaded("busy", retry_after_seconds=0.2))
        finally:
            await service.close()
        return error

    error = run(body())
    assert error.status == 429
    assert error.headers["Retry-After"] == "7"


def test_healthz_flips_to_503_during_reload(saved_index, monkeypatch):
    """While a reload is loading, health is 503 and queries are shed; after
    it completes, health recovers and the reload is counted."""

    during: dict[str, object] = {}

    async def body():
        hold = threading.Event()
        release = threading.Event()
        real_load_sync = _ServedIndex.load_sync

        def slow_load_sync(self):
            hold.set()
            assert release.wait(timeout=60)
            return real_load_sync(self)

        service = make_service(saved_index)
        await service.start()
        before_status, _ = service.healthz()
        monkeypatch.setattr(_ServedIndex, "load_sync", slow_load_sync)
        try:
            reload_task = asyncio.create_task(service.reload({}))
            await asyncio.get_running_loop().run_in_executor(None, hold.wait, 60)
            during["healthz"] = service.healthz()
            try:
                await service.query({"query": sorted(saved_index.dataset[0])})
                during["query_error"] = None
            except ApiError as error:
                during["query_error"] = error
            release.set()
            reload_payload = await reload_task
            after_status, after_body = service.healthz()
        finally:
            release.set()
            await service.close()
        return before_status, reload_payload, after_status, after_body

    before_status, reload_payload, after_status, after_body = run(body())
    assert before_status == 200
    status, body_during = during["healthz"]
    assert status == 503
    assert body_during["indexes"]["default"] == "reloading"
    query_error = during["query_error"]
    assert query_error is not None and query_error.status == 503
    assert query_error.headers["Retry-After"] == "1"
    assert reload_payload["reloads"] == 1
    assert after_status == 200
    assert after_body["indexes"]["default"] == "ok"


def test_queries_still_answered_after_reload(saved_index):
    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            await service.reload({})
            payload = await service.query({"query": sorted(saved_index.dataset[0])})
        finally:
            await service.close()
        return payload

    payload = run(body())
    expected_match, _ = saved_index.index.query(saved_index.dataset[0])
    assert payload["match"] == expected_match


def test_reload_failure_keeps_old_index_serving(saved_index):
    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            with pytest.raises(ApiError) as excinfo:
                await service.reload({"path": str(saved_index.path) + ".does-not-exist"})
            status_after = service.healthz()[0]
        finally:
            await service.close()
        return excinfo.value, status_after

    error, status_after = run(body())
    assert error.status == 500
    # The failed path sticks in the spec (the operator asked for it), but
    # the old index keeps serving.
    assert status_after == 200


def test_request_validation_errors(saved_index):
    async def body():
        service = make_service(saved_index)
        await service.start()
        errors = {}
        try:
            for name, call in {
                "missing-query": service.query({}),
                "non-integer-query": service.query({"query": ["a"]}),
                "empty-query": service.query({"query": []}),
                "bad-mode": service.query(
                    {"query": [1], "mode": "fastest"}
                ),
                "unknown-index": service.query({"query": [1], "index": "nope"}),
                "bad-batch": service.query_batch({"queries": "nope"}),
                "bad-probes": service.similarity_join_endpoint({"probes": []}),
                "bad-measure": service.similarity_join_endpoint(
                    {"probes": [[1, 2]], "measure": "cosine-ish"}
                ),
            }.items():
                try:
                    await call
                except ApiError as error:
                    errors[name] = error.status
        finally:
            await service.close()
        return errors

    errors = run(body())
    assert errors == {
        "missing-query": 400,
        "non-integer-query": 400,
        "empty-query": 400,
        "bad-mode": 400,
        "unknown-index": 404,
        "bad-batch": 400,
        "bad-probes": 400,
        "bad-measure": 400,
    }


def test_similarity_join_endpoint_matches_library_call(saved_index):
    from repro.core.join import similarity_join
    from repro.similarity.predicates import SimilarityPredicate

    probes = saved_index.dataset[:8]

    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            payload = await service.similarity_join_endpoint(
                {"probes": [sorted(probe) for probe in probes], "threshold": 0.6}
            )
        finally:
            await service.close()
        return payload

    payload = run(body())
    expected = similarity_join(
        saved_index.index, probes, SimilarityPredicate(threshold=0.6)
    )
    assert payload["num_pairs"] == expected.num_pairs
    assert payload["pairs"] == [[r, s, sim] for r, s, sim in expected.pairs]


def test_stats_shape_and_uptime(saved_index):
    async def body():
        service = make_service(saved_index)
        await service.start()
        try:
            await service.query({"query": sorted(saved_index.dataset[0])})
            payload = service.stats()
        finally:
            await service.close()
        return payload

    payload = run(body())
    assert payload["uptime_seconds"] >= 0
    assert payload["config"]["batch_window_ms"] == 2.0
    entry = payload["indexes"]["default"]
    assert entry["status"] == "ok"
    assert entry["engine_calls"] >= 1
    assert entry["queries_executed"] == 1
    assert entry["engine"]["num_queries"] == 1
    assert "per_query" not in entry["engine"], "/stats must stay bounded"
    kernel = entry["engine"]["kernel"]
    assert set(kernel) == {
        "paths_extended",
        "keys_folded",
        "chain_probes",
        "merge_rows",
        "dedupe_hits",
    }
    assert kernel["paths_extended"] > 0
    assert kernel["merge_rows"] > 0


def test_single_index_service_answers_default_alias(saved_index):
    """A single index named something else still answers index-less requests."""

    async def body():
        service = QueryService(
            [IndexSpec(name="primary", path=str(saved_index.path))],
            ServeConfig(port=0),
        )
        await service.start()
        try:
            payload = await service.query({"query": sorted(saved_index.dataset[0])})
        finally:
            await service.close()
        return payload

    assert run(body())["index"] == "primary"


def test_duplicate_index_names_rejected(saved_index):
    with pytest.raises(ValueError, match="duplicate"):
        QueryService(
            [
                IndexSpec(name="a", path=str(saved_index.path)),
                IndexSpec(name="a", path=str(saved_index.path)),
            ]
        )
    with pytest.raises(ValueError, match="at least one"):
        QueryService([])

"""Tests for the binary similarity measures."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.similarity.measures import (
    braun_blanquet,
    cosine,
    dice,
    hamming_distance,
    intersection_size,
    jaccard,
    overlap_coefficient,
    pearson_binary,
    similarity_matrix,
    weight_histogram,
)


class TestIntersectionSize:
    def test_disjoint(self):
        assert intersection_size({1, 2}, {3, 4}) == 0

    def test_identical(self):
        assert intersection_size({1, 2, 3}, {1, 2, 3}) == 3

    def test_partial(self):
        assert intersection_size({1, 2, 3}, {2, 3, 4}) == 2

    def test_accepts_lists(self):
        assert intersection_size([1, 2, 2, 3], [3, 2]) == 2

    def test_empty(self):
        assert intersection_size(set(), {1}) == 0


class TestBraunBlanquet:
    def test_identical_sets(self):
        assert braun_blanquet({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint_sets(self):
        assert braun_blanquet({1}, {2}) == 0.0

    def test_uses_max_size(self):
        # |x ∩ q| = 2, max size = 4.
        assert braun_blanquet({1, 2}, {1, 2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert braun_blanquet(set(), set()) == 0.0

    def test_symmetric(self):
        x, q = {1, 2, 5}, {2, 5, 9, 11}
        assert braun_blanquet(x, q) == braun_blanquet(q, x)

    def test_at_most_overlap_coefficient(self):
        x, q = {1, 2, 5}, {2, 5, 9, 11}
        assert braun_blanquet(x, q) <= overlap_coefficient(x, q)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_known_value(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(2.0 / 4.0)

    def test_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_jaccard_below_braun_blanquet(self):
        x, q = {1, 2, 3, 4}, {3, 4, 5, 6}
        assert jaccard(x, q) <= braun_blanquet(x, q)


class TestDiceOverlapCosine:
    def test_dice_known_value(self):
        assert dice({1, 2, 3}, {2, 3, 4}) == pytest.approx(4.0 / 6.0)

    def test_dice_empty(self):
        assert dice(set(), set()) == 0.0

    def test_overlap_known_value(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_overlap_empty(self):
        assert overlap_coefficient(set(), {1}) == 0.0

    def test_cosine_known_value(self):
        assert cosine({1, 2}, {2, 3, 4, 5}) == pytest.approx(1.0 / math.sqrt(8.0))

    def test_cosine_empty(self):
        assert cosine(set(), {1}) == 0.0

    def test_measure_ordering(self):
        """For any pair: jaccard <= dice and braun_blanquet <= cosine <= overlap."""
        x, q = {1, 2, 3, 7}, {2, 3, 9}
        assert jaccard(x, q) <= dice(x, q)
        assert braun_blanquet(x, q) <= cosine(x, q) <= overlap_coefficient(x, q)


class TestHamming:
    def test_identical(self):
        assert hamming_distance({1, 2}, {1, 2}) == 0

    def test_disjoint(self):
        assert hamming_distance({1, 2}, {3}) == 3

    def test_symmetric_difference(self):
        assert hamming_distance({1, 2, 3}, {3, 4}) == 3


class TestPearsonBinary:
    def test_identical_vectors_positive(self):
        assert pearson_binary({1, 2, 3}, {1, 2, 3}, dimension=10) == pytest.approx(1.0)

    def test_disjoint_vectors_negative(self):
        assert pearson_binary({0, 1}, {2, 3}, dimension=4) < 0.0

    def test_empty_vector_zero(self):
        assert pearson_binary(set(), {1}, dimension=5) == 0.0

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            pearson_binary({1}, {2}, dimension=0)

    def test_index_outside_dimension(self):
        with pytest.raises(ValueError):
            pearson_binary({10}, {1}, dimension=5)

    def test_symmetric(self):
        assert pearson_binary({1, 3}, {3, 4}, 20) == pytest.approx(
            pearson_binary({3, 4}, {1, 3}, 20)
        )

    def test_matches_numpy_corrcoef(self):
        dimension = 50
        x = {1, 5, 9, 20, 33}
        q = {5, 9, 21, 33, 40, 41}
        dense_x = np.zeros(dimension)
        dense_q = np.zeros(dimension)
        dense_x[list(x)] = 1.0
        dense_q[list(q)] = 1.0
        expected = float(np.corrcoef(dense_x, dense_q)[0, 1])
        assert pearson_binary(x, q, dimension) == pytest.approx(expected)


class TestSimilarityMatrix:
    def test_shape_self(self):
        sets = [{1, 2}, {2, 3}, {4}]
        assert similarity_matrix(sets).shape == (3, 3)

    def test_diagonal_is_one(self):
        sets = [{1, 2}, {2, 3, 4}]
        matrix = similarity_matrix(sets)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_asymmetric_shapes(self):
        matrix = similarity_matrix([{1}, {2}], queries=[{1}, {2}, {3}])
        assert matrix.shape == (2, 3)

    def test_measure_selection(self):
        sets = [{1, 2, 3}, {2, 3, 4}]
        bb = similarity_matrix(sets, measure="braun_blanquet")[0, 1]
        jac = similarity_matrix(sets, measure="jaccard")[0, 1]
        assert bb == pytest.approx(2.0 / 3.0)
        assert jac == pytest.approx(0.5)

    def test_unknown_measure(self):
        with pytest.raises(KeyError):
            similarity_matrix([{1}], measure="nope")


class TestWeightHistogram:
    def test_counts_sizes(self):
        histogram = weight_histogram([{1}, {1, 2}, {3, 4}, set()])
        assert histogram == {1: 1, 2: 2, 0: 1}

    def test_empty_collection(self):
        assert weight_histogram([]) == {}

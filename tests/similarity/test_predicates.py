"""Tests for similarity predicates and threshold conversions."""

from __future__ import annotations

import pytest

from repro.similarity.measures import braun_blanquet, jaccard
from repro.similarity.predicates import (
    SimilarityPredicate,
    braun_blanquet_from_jaccard,
    jaccard_from_braun_blanquet,
    measure_by_name,
)


class TestMeasureByName:
    def test_known_measures(self):
        for name in ("braun_blanquet", "jaccard", "dice", "overlap", "cosine"):
            assert callable(measure_by_name(name))

    def test_case_insensitive(self):
        assert measure_by_name("JACCARD") is measure_by_name("jaccard")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            measure_by_name("euclidean")


class TestThresholdConversions:
    def test_round_trip(self):
        for threshold in (0.1, 0.3, 0.5, 0.8, 1.0):
            jaccard_threshold = jaccard_from_braun_blanquet(threshold)
            assert braun_blanquet_from_jaccard(jaccard_threshold) == pytest.approx(threshold)

    def test_extremes(self):
        assert jaccard_from_braun_blanquet(0.0) == 0.0
        assert jaccard_from_braun_blanquet(1.0) == 1.0

    def test_jaccard_threshold_is_lower(self):
        # For B in (0, 1) the corresponding Jaccard threshold is strictly smaller.
        assert jaccard_from_braun_blanquet(0.5) < 0.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            jaccard_from_braun_blanquet(1.5)
        with pytest.raises(ValueError):
            braun_blanquet_from_jaccard(-0.1)

    def test_conversion_is_recall_safe_on_equal_sizes(self):
        """A pair meeting the BB threshold also meets the converted Jaccard threshold."""
        x = frozenset(range(10))
        q = frozenset(range(5, 15))
        bb = braun_blanquet(x, q)
        assert jaccard(x, q) >= jaccard_from_braun_blanquet(bb) - 1e-12


class TestSimilarityPredicate:
    def test_accepts_above_threshold(self):
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        assert predicate.accepts({1, 2, 3}, {1, 2, 3, 4})  # similarity 0.75

    def test_rejects_below_threshold(self):
        predicate = SimilarityPredicate("braun_blanquet", 0.9)
        assert not predicate.accepts({1, 2, 3}, {1, 2, 3, 4})

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SimilarityPredicate("jaccard", 1.2)

    def test_invalid_measure(self):
        with pytest.raises(KeyError):
            SimilarityPredicate("nonsense", 0.4)

    def test_with_threshold_returns_copy(self):
        predicate = SimilarityPredicate("jaccard", 0.4)
        relaxed = predicate.with_threshold(0.2)
        assert relaxed.threshold == 0.2
        assert predicate.threshold == 0.4
        assert relaxed.measure == "jaccard"

    def test_similarity_delegates_to_measure(self):
        predicate = SimilarityPredicate("jaccard", 0.1)
        assert predicate.similarity({1, 2}, {2, 3}) == pytest.approx(jaccard({1, 2}, {2, 3}))

    def test_as_jaccard_conversion(self):
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        converted = predicate.as_jaccard()
        assert converted.measure == "jaccard"
        assert converted.threshold == pytest.approx(jaccard_from_braun_blanquet(0.5))

    def test_as_jaccard_noop_for_other_measures(self):
        predicate = SimilarityPredicate("cosine", 0.5)
        assert predicate.as_jaccard() is predicate

    def test_frozen(self):
        predicate = SimilarityPredicate("jaccard", 0.4)
        with pytest.raises(AttributeError):
            predicate.threshold = 0.9  # type: ignore[misc]

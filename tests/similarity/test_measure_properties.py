"""Property-based tests (hypothesis) for the similarity measures."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import (
    braun_blanquet,
    cosine,
    dice,
    hamming_distance,
    intersection_size,
    jaccard,
    overlap_coefficient,
)

item_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=40)
nonempty_item_sets = st.frozensets(st.integers(min_value=0, max_value=200), min_size=1, max_size=40)


@given(item_sets, item_sets)
@settings(max_examples=200)
def test_all_measures_bounded(x, q):
    """Every similarity measure maps into [0, 1]."""
    for measure in (braun_blanquet, jaccard, dice, overlap_coefficient, cosine):
        value = measure(x, q)
        assert 0.0 <= value <= 1.0


@given(item_sets, item_sets)
@settings(max_examples=200)
def test_all_measures_symmetric(x, q):
    for measure in (braun_blanquet, jaccard, dice, overlap_coefficient, cosine):
        assert measure(x, q) == measure(q, x)


@given(nonempty_item_sets)
@settings(max_examples=100)
def test_self_similarity_is_one(x):
    for measure in (braun_blanquet, jaccard, dice, overlap_coefficient, cosine):
        assert measure(x, x) == 1.0


@given(item_sets, item_sets)
@settings(max_examples=200)
def test_measure_ordering_chain(x, q):
    """jaccard <= braun_blanquet <= cosine (geometric mean) <= overlap."""
    assert jaccard(x, q) <= braun_blanquet(x, q) + 1e-12
    assert braun_blanquet(x, q) <= cosine(x, q) + 1e-12
    assert cosine(x, q) <= overlap_coefficient(x, q) + 1e-12


@given(item_sets, item_sets)
@settings(max_examples=200)
def test_jaccard_dice_relation(x, q):
    """Dice = 2J / (1 + J) exactly."""
    j = jaccard(x, q)
    expected_dice = 2.0 * j / (1.0 + j) if j > 0 else 0.0
    if len(x) + len(q) > 0:
        assert abs(dice(x, q) - expected_dice) < 1e-12


@given(item_sets, item_sets)
@settings(max_examples=200)
def test_hamming_consistent_with_intersection(x, q):
    assert hamming_distance(x, q) == len(x) + len(q) - 2 * intersection_size(x, q)


@given(item_sets, item_sets, item_sets)
@settings(max_examples=150)
def test_hamming_triangle_inequality(x, q, z):
    assert hamming_distance(x, z) <= hamming_distance(x, q) + hamming_distance(q, z)


@given(nonempty_item_sets, nonempty_item_sets)
@settings(max_examples=200)
def test_braun_blanquet_equals_intersection_over_max(x, q):
    expected = intersection_size(x, q) / max(len(x), len(q))
    assert abs(braun_blanquet(x, q) - expected) < 1e-12


@given(item_sets, item_sets, st.integers(min_value=0, max_value=200))
@settings(max_examples=200)
def test_adding_shared_item_never_decreases_jaccard(x, q, item):
    """Adding the same item to both sets cannot decrease Jaccard similarity."""
    base = jaccard(x, q)
    extended = jaccard(frozenset(set(x) | {item}), frozenset(set(q) | {item}))
    assert extended >= base - 1e-12

"""Tests for the Chosen Path baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.chosen_path import ChosenPathIndex, chosen_path_depth
from repro.similarity.measures import braun_blanquet


class TestDepth:
    def test_formula(self):
        assert chosen_path_depth(1000, 0.25) == math.ceil(math.log(1000) / math.log(4))

    def test_small_dataset(self):
        assert chosen_path_depth(1, 0.25) == 1

    def test_invalid_b2(self):
        with pytest.raises(ValueError):
            chosen_path_depth(100, 1.0)

    def test_depth_grows_with_b2(self):
        assert chosen_path_depth(1000, 0.5) > chosen_path_depth(1000, 0.1)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ChosenPathIndex(0, b1=0.5, b2=0.2)
        with pytest.raises(ValueError):
            ChosenPathIndex(10, b1=0.0, b2=0.2)
        with pytest.raises(ValueError):
            ChosenPathIndex(10, b1=0.5, b2=1.0)
        with pytest.raises(ValueError):
            ChosenPathIndex(10, b1=0.3, b2=0.5)  # b2 >= b1

    def test_rho_property(self):
        index = ChosenPathIndex(10, b1=0.5, b2=0.25)
        assert index.rho == pytest.approx(0.5)

    def test_query_before_build(self):
        with pytest.raises(RuntimeError):
            ChosenPathIndex(10, b1=0.5, b2=0.25).query({1})


class TestSearch:
    @pytest.fixture(scope="class")
    def built(self, uniform_distribution, uniform_dataset):
        index = ChosenPathIndex(
            uniform_distribution.dimension,
            b1=0.5,
            b2=max(uniform_distribution.expected_similarity(), 0.05),
            repetitions=6,
            seed=4,
        )
        index.build(uniform_dataset)
        return index

    def test_build_stats(self, built, uniform_dataset):
        assert built.num_indexed == len(uniform_dataset)
        assert built.build_stats.total_filters > 0
        assert built.total_stored_filters == built.build_stats.total_filters

    def test_self_queries_found(self, built, uniform_dataset):
        found = 0
        for index in range(30):
            result, _stats = built.query(uniform_dataset[index])
            if result is not None:
                assert braun_blanquet(built.get_vector(result), uniform_dataset[index]) >= 0.5
                found += 1
        assert found >= 25

    def test_returned_results_meet_threshold(self, built, uniform_dataset):
        for index in range(15):
            result, _stats = built.query(uniform_dataset[index])
            if result is not None:
                assert braun_blanquet(built.get_vector(result), uniform_dataset[index]) >= built.b1

    def test_query_candidates(self, built, uniform_dataset):
        candidates, stats = built.query_candidates(uniform_dataset[0])
        assert stats.unique_candidates == len(candidates)

    def test_repr(self, built):
        assert "ChosenPathIndex" in repr(built)


class TestSkewObliviousness:
    def test_work_similar_on_skewed_and_uniform_data(
        self, skewed_distribution, uniform_distribution
    ):
        """Chosen Path cannot exploit skew: its per-query filter count is
        driven by (b1, b2) only, not by the shape of the distribution."""
        rng = np.random.default_rng(2)
        filters = {}
        for name, distribution in (
            ("skewed", skewed_distribution),
            ("uniform", uniform_distribution),
        ):
            dataset = [
                v if v else frozenset({0}) for v in distribution.sample_many(100, rng)
            ]
            index = ChosenPathIndex(
                distribution.dimension, b1=0.5, b2=0.12, repetitions=4, seed=6
            )
            index.build(dataset)
            generated = []
            for query_index in range(20):
                _result, stats = index.query(dataset[query_index], mode="best")
                generated.append(stats.filters_generated)
            filters[name] = float(np.mean(generated))
        ratio = filters["skewed"] / max(filters["uniform"], 1e-9)
        assert 0.2 < ratio < 5.0

"""Tests for the MinHash LSH baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.minhash import MinHashIndex, banding_parameters, estimate_rho_minhash
from repro.similarity.measures import braun_blanquet


class TestBandingParameters:
    def test_returns_positive_parameters(self):
        bands, rows = banding_parameters(0.5)
        assert bands > 0 and rows > 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            banding_parameters(0.0)
        with pytest.raises(ValueError):
            banding_parameters(1.0)

    def test_higher_threshold_needs_more_rows(self):
        _bands_low, rows_low = banding_parameters(0.2)
        _bands_high, rows_high = banding_parameters(0.9)
        assert rows_high >= rows_low


class TestEstimateRho:
    def test_known_value(self):
        assert estimate_rho_minhash(0.5, 0.25) == pytest.approx(0.5)

    def test_perfect_similarity_is_zero(self):
        assert estimate_rho_minhash(1.0, 0.5) == 0.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            estimate_rho_minhash(0.2, 0.5)


class TestMinHashIndex:
    @pytest.fixture(scope="class")
    def built(self, uniform_distribution, uniform_dataset):
        index = MinHashIndex(threshold=0.6, num_bands=24, rows_per_band=2, seed=1)
        index.build(uniform_dataset)
        return index

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MinHashIndex(threshold=0.0)
        with pytest.raises(ValueError):
            MinHashIndex(threshold=0.5, num_bands=0, rows_per_band=2)

    def test_collision_probability_s_curve(self):
        index = MinHashIndex(threshold=0.5, num_bands=16, rows_per_band=4, seed=0)
        low = index.collision_probability(0.1)
        high = index.collision_probability(0.9)
        assert low < high
        assert 0.0 <= low <= 1.0 and 0.0 <= high <= 1.0

    def test_collision_probability_validation(self):
        index = MinHashIndex(threshold=0.5, seed=0)
        with pytest.raises(ValueError):
            index.collision_probability(1.5)

    def test_build_stats(self, built, uniform_dataset):
        assert built.num_indexed == len(uniform_dataset)

    def test_self_queries_found(self, built, uniform_dataset):
        found = 0
        for index in range(30):
            result, _stats = built.query(uniform_dataset[index])
            if result is not None:
                assert braun_blanquet(built.get_vector(result), uniform_dataset[index]) >= 0.6
                found += 1
        assert found >= 25

    def test_returned_results_meet_threshold(self, built, uniform_dataset):
        for index in range(10):
            result, _stats = built.query(uniform_dataset[index], mode="best")
            if result is not None:
                assert braun_blanquet(built.get_vector(result), uniform_dataset[index]) >= 0.6

    def test_empty_query(self, built):
        result, stats = built.query(frozenset())
        assert result is None
        assert stats.candidates_examined == 0

    def test_invalid_mode(self, built):
        with pytest.raises(ValueError):
            built.query({1}, mode="xyz")

    def test_query_candidates_deduplicated(self, built, uniform_dataset):
        candidates, stats = built.query_candidates(uniform_dataset[0])
        assert stats.unique_candidates == len(candidates)

    def test_dissimilar_query_returns_few_candidates(self, built, uniform_distribution):
        rng = np.random.default_rng(9)
        fresh = uniform_distribution.sample(rng)
        candidates, _stats = built.query_candidates(fresh)
        assert len(candidates) <= built.num_indexed // 2

    def test_repr(self, built):
        assert "MinHashIndex" in repr(built)

"""Tests for the brute-force (ground truth) index."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import BruteForceIndex
from repro.similarity.predicates import SimilarityPredicate

DATASET = [
    frozenset({1, 2, 3, 4}),
    frozenset({1, 2, 3, 9}),
    frozenset({10, 11, 12}),
    frozenset({1, 2}),
]


@pytest.fixture()
def index() -> BruteForceIndex:
    brute = BruteForceIndex(SimilarityPredicate("braun_blanquet", 0.6))
    brute.build(DATASET)
    return brute


class TestQuery:
    def test_exact_self_match(self, index):
        result, stats = index.query(DATASET[0], mode="best")
        assert result == 0
        assert stats.found

    def test_first_mode_returns_first_qualifying(self, index):
        result, _stats = index.query({1, 2, 3, 4}, mode="first")
        assert result == 0

    def test_no_match_returns_none(self, index):
        result, stats = index.query({50, 51, 52}, mode="best")
        assert result is None
        assert not stats.found

    def test_examines_everything(self, index):
        _result, stats = index.query({1, 2, 3, 4}, mode="best")
        assert stats.candidates_examined == len(DATASET)
        assert stats.similarity_evaluations == len(DATASET)

    def test_invalid_mode(self, index):
        with pytest.raises(ValueError):
            index.query({1}, mode="other")

    def test_best_returns_most_similar(self, index):
        result, _stats = index.query({1, 2, 3, 4, 9}, mode="best")
        assert result in (0, 1)


class TestCandidatesAndMatches:
    def test_query_candidates_is_everything(self, index):
        candidates, stats = index.query_candidates({1})
        assert candidates == {0, 1, 2, 3}
        assert stats.candidates_examined == 4

    def test_all_matches_sorted_by_similarity(self, index):
        matches = index.all_matches({1, 2, 3, 4})
        assert matches[0][0] == 0
        similarities = [similarity for _id, similarity in matches]
        assert similarities == sorted(similarities, reverse=True)

    def test_all_matches_respects_threshold_override(self, index):
        strict = SimilarityPredicate("braun_blanquet", 0.99)
        assert index.all_matches({1, 2, 3, 4}, predicate=strict) == [(0, 1.0)]

    def test_nearest_without_threshold(self, index):
        best_id, best_similarity = index.nearest({10, 11})
        assert best_id == 2
        assert best_similarity > 0.6

    def test_nearest_on_empty_index(self):
        empty = BruteForceIndex()
        empty.build([])
        assert empty.nearest({1}) == (None, 0.0)

    def test_get_vector(self, index):
        assert index.get_vector(2) == frozenset({10, 11, 12})

    def test_num_indexed(self, index):
        assert index.num_indexed == len(DATASET)

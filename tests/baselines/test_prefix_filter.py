"""Tests for the prefix filtering baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceIndex
from repro.baselines.prefix_filter import PrefixFilterIndex, prefix_length
from repro.similarity.measures import braun_blanquet
from repro.similarity.predicates import SimilarityPredicate


class TestPrefixLength:
    def test_formula(self):
        # |x| = 10, b1 = 0.5: overlap >= 5, prefix length = 10 - 5 + 1 = 6.
        assert prefix_length(10, 0.5) == 6

    def test_threshold_one_single_item(self):
        assert prefix_length(10, 1.0) == 1

    def test_empty_set(self):
        assert prefix_length(0, 0.5) == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            prefix_length(10, 0.0)

    def test_never_exceeds_size(self):
        for size in range(1, 30):
            for threshold in (0.1, 0.5, 0.9):
                assert 1 <= prefix_length(size, threshold) <= size


class TestPrefixFilterIndex:
    @pytest.fixture(scope="class")
    def built(self, skewed_distribution, skewed_dataset):
        index = PrefixFilterIndex(0.5, item_frequencies=skewed_distribution.probabilities)
        index.build(skewed_dataset)
        return index

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PrefixFilterIndex(0.0)

    def test_build_statistics(self, built, skewed_dataset):
        assert built.num_indexed == len(skewed_dataset)
        assert 0 < built.total_postings <= sum(len(s) for s in skewed_dataset)

    def test_exactness_of_search(self, built, skewed_distribution, skewed_dataset):
        """Prefix filtering is exact: whenever brute force finds a qualifying
        vector, so does the prefix filter."""
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        brute = BruteForceIndex(predicate)
        brute.build(skewed_dataset)
        rng = np.random.default_rng(4)
        for trial in range(25):
            stored = sorted(skewed_dataset[trial])
            keep = max(1, int(0.85 * len(stored)))
            query = frozenset(rng.choice(stored, size=keep, replace=False).tolist())
            exact_result, _ = brute.query(query, mode="best")
            prefix_result, _ = built.query(query, mode="best")
            if exact_result is not None:
                assert prefix_result is not None
                assert braun_blanquet(built.get_vector(prefix_result), query) >= 0.5

    def test_returned_results_meet_threshold(self, built, skewed_dataset):
        for index in range(20):
            result, _stats = built.query(skewed_dataset[index])
            if result is not None:
                assert braun_blanquet(built.get_vector(result), skewed_dataset[index]) >= 0.5

    def test_self_queries_found(self, built, skewed_dataset):
        for index in range(20):
            result, _stats = built.query(skewed_dataset[index], mode="best")
            assert result is not None

    def test_empty_query(self, built):
        result, stats = built.query(frozenset())
        assert result is None
        assert stats.candidates_examined == 0

    def test_invalid_mode(self, built):
        with pytest.raises(ValueError):
            built.query({1}, mode="zzz")

    def test_query_candidates(self, built, skewed_dataset):
        candidates, stats = built.query_candidates(skewed_dataset[0])
        assert stats.unique_candidates == len(candidates)
        assert stats.filters_generated == prefix_length(len(skewed_dataset[0]), 0.5)

    def test_empirical_frequencies_used_when_not_provided(self, skewed_dataset):
        index = PrefixFilterIndex(0.5)
        index.build(skewed_dataset)
        result, _stats = index.query(skewed_dataset[0], mode="best")
        assert result is not None

    def test_repr(self, built):
        assert "PrefixFilterIndex" in repr(built)


class TestSkewSensitivity:
    def test_rare_prefixes_mean_few_candidates(self, skewed_distribution, skewed_dataset):
        """On skewed data the prefix (rarest items) generates short candidate
        lists; on uniform data of the same size the lists are longer."""
        prefix_skewed = PrefixFilterIndex(0.5, item_frequencies=skewed_distribution.probabilities)
        prefix_skewed.build(skewed_dataset)
        candidates_skewed = []
        for index in range(25):
            _result, stats = prefix_skewed.query(skewed_dataset[index], mode="best")
            candidates_skewed.append(stats.candidates_examined)

        rng = np.random.default_rng(11)
        uniform_probabilities = np.full(60, 0.25)
        uniform_sets = [
            frozenset(np.flatnonzero(rng.random(60) < uniform_probabilities).tolist())
            for _ in range(len(skewed_dataset))
        ]
        prefix_uniform = PrefixFilterIndex(0.5, item_frequencies=uniform_probabilities)
        prefix_uniform.build(uniform_sets)
        candidates_uniform = []
        for index in range(25):
            _result, stats = prefix_uniform.query(uniform_sets[index], mode="best")
            candidates_uniform.append(stats.candidates_examined)

        assert float(np.mean(candidates_skewed)) < float(np.mean(candidates_uniform))

"""Tests for the method-comparison sweeps (Figure 1, Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.comparison import (
    MethodComparison,
    adversarial_comparison,
    compare_methods,
    figure1_curve,
)


class TestCompareMethods:
    def test_skewed_instance_improvement_positive(self):
        probabilities = np.concatenate([np.full(300, 0.3), np.full(300, 0.3 / 8.0)])
        comparison = compare_methods(probabilities, alpha=2.0 / 3.0)
        assert comparison.skew_adaptive_rho < comparison.chosen_path_rho
        assert comparison.improvement_over_chosen_path > 0.0

    def test_uniform_instance_no_improvement(self):
        probabilities = np.full(500, 0.1)
        comparison = compare_methods(probabilities, alpha=0.5)
        assert comparison.skew_adaptive_rho == pytest.approx(comparison.chosen_path_rho, abs=1e-9)

    def test_expected_similarities_ordered(self):
        probabilities = np.concatenate([np.full(100, 0.2), np.full(100, 0.05)])
        comparison = compare_methods(probabilities, alpha=0.6)
        assert comparison.expected_far_similarity < comparison.expected_close_similarity

    def test_prefix_exponent_one_for_theta1_probabilities(self):
        probabilities = np.concatenate([np.full(100, 0.2), np.full(100, 0.05)])
        comparison = compare_methods(probabilities, alpha=0.6, num_vectors=10**6)
        assert comparison.prefix_filter_exponent > 0.7

    def test_dataclass_fields(self):
        comparison = MethodComparison(0.2, 0.5, 1.0, 0.7, 0.1)
        assert comparison.improvement_over_chosen_path == pytest.approx(0.3)


class TestFigure1Curve:
    def test_default_grid(self):
        rows = figure1_curve()
        assert len(rows) >= 20
        assert {"p", "ours", "chosen_path", "prefix_filter", "b1", "b2"} <= set(rows[0])

    def test_ours_below_chosen_path_everywhere(self):
        """The headline claim of Figure 1."""
        rows = figure1_curve(p_values=np.linspace(0.05, 0.9, 18))
        for row in rows:
            assert row["ours"] < row["chosen_path"] + 1e-12

    def test_curves_have_increasing_trend(self):
        """Both curves rise with p overall (the exact equation allows small
        local wiggles for our curve, so only the trend is asserted)."""
        rows = figure1_curve(p_values=np.linspace(0.05, 0.9, 18))
        ours = [row["ours"] for row in rows]
        chosen = [row["chosen_path"] for row in rows]
        assert ours[-1] > ours[0]
        assert chosen == sorted(chosen)
        for earlier, later in zip(ours, ours[1:]):
            assert later >= earlier - 0.02

    def test_rho_values_in_unit_interval(self):
        rows = figure1_curve(p_values=np.linspace(0.05, 0.9, 10))
        for row in rows:
            assert 0.0 <= row["ours"] <= 1.0
            assert 0.0 <= row["chosen_path"] <= 1.0

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            figure1_curve(p_values=[0.0])

    def test_rare_divisor_one_removes_gap(self):
        """With rare_divisor = 1 the two blocks are identical: no skew, no gap."""
        rows = figure1_curve(p_values=[0.2, 0.4], rare_divisor=1.0)
        for row in rows:
            assert row["ours"] == pytest.approx(row["chosen_path"], abs=1e-9)

    def test_larger_divisor_larger_gap(self):
        mild = figure1_curve(p_values=[0.3], rare_divisor=2.0)[0]
        strong = figure1_curve(p_values=[0.3], rare_divisor=16.0)[0]
        gap_mild = mild["chosen_path"] - mild["ours"]
        gap_strong = strong["chosen_path"] - strong["ours"]
        assert gap_strong > gap_mild


class TestAdversarialComparison:
    def test_section71_shape(self):
        n = 10**9
        probabilities = np.concatenate([np.full(100, 0.25), np.full(100, n**-0.9)])
        result = adversarial_comparison(probabilities, b1=1.0 / 3.0, num_vectors=n)
        assert result["ours"] < result["chosen_path"]
        assert result["prefix_filter"] == pytest.approx(0.1, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            adversarial_comparison(np.array([]), 0.5, 100)

"""Tests for the Section 1 motivating example analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.families import harmonic_probabilities, uniform_probabilities
from repro.theory.motivating import (
    SplitExponents,
    motivating_example_exponents,
    single_search_exponent,
    skew_adaptive_exponent,
    split_query_exponents,
)


def harmonic_query_probabilities(dimension: int = 4096) -> np.ndarray:
    """Probabilities of a 'typical' harmonic query: the most frequent items."""
    probabilities = harmonic_probabilities(dimension, maximum=1.0)
    query_size = max(4, int(np.log(dimension)))
    return probabilities[:query_size]


class TestSingleSearchExponent:
    def test_formula(self):
        probabilities = np.full(10, 0.1)
        assert single_search_exponent(probabilities, 0.3) == pytest.approx(
            np.log(0.3) / np.log(0.1)
        )

    def test_degenerate_inputs_give_trivial_exponent(self):
        assert single_search_exponent(np.full(5, 0.5), 0.3) == 1.0  # i1 <= i2

    def test_validation(self):
        with pytest.raises(ValueError):
            single_search_exponent(np.array([]), 0.3)
        with pytest.raises(ValueError):
            single_search_exponent(np.array([0.1]), 0.0)


class TestSkewAdaptiveExponent:
    def test_beats_single_search_on_skewed_query(self):
        """The paper's principled structure improves on the skew-oblivious
        exponent whenever the query's item probabilities are skewed."""
        probabilities = harmonic_query_probabilities()
        i1 = 0.5
        adaptive = skew_adaptive_exponent(probabilities, i1)
        single = single_search_exponent(probabilities, i1)
        assert adaptive <= single + 1e-12

    def test_matches_single_search_without_skew(self):
        probabilities = uniform_probabilities(100, 0.05)
        i1 = 0.4
        assert skew_adaptive_exponent(probabilities, i1) == pytest.approx(
            single_search_exponent(probabilities, i1), abs=1e-6
        )


class TestSplitQueryExponents:
    def test_returns_all_three_exponents(self):
        result = split_query_exponents(harmonic_query_probabilities(), i1=0.5)
        assert isinstance(result, SplitExponents)
        assert 0.0 <= result.single_rho <= 1.0
        assert 0.0 <= result.split_cost_exponent <= 1.0
        assert 0.0 <= result.skew_adaptive_rho <= 1.0

    def test_adaptive_no_worse_than_single(self):
        result = split_query_exponents(harmonic_query_probabilities(), i1=0.5)
        assert result.skew_adaptive_rho <= result.single_rho + 1e-12
        assert result.adaptive_speedup_exponent >= -1e-12

    def test_adaptive_strictly_better_on_harmonic_query(self):
        """Harmonic queries mix very frequent and rarer items, so the
        skew-adaptive exponent is strictly smaller."""
        result = split_query_exponents(harmonic_query_probabilities(), i1=0.6)
        assert result.adaptive_speedup_exponent > 0.01

    def test_mass_split_consistent(self):
        probabilities = harmonic_query_probabilities()
        result = split_query_exponents(probabilities, i1=0.5)
        assert result.i_frequent + result.i_rare == pytest.approx(result.i2)
        assert result.i_frequent >= result.i_rare

    def test_split_parameter_within_target(self):
        result = split_query_exponents(harmonic_query_probabilities(), i1=0.5)
        assert 0.0 < result.split_parameter <= 0.5

    def test_uniform_query_no_adaptive_gain(self):
        probabilities = uniform_probabilities(50, 0.02)
        result = split_query_exponents(probabilities, i1=0.4)
        assert result.adaptive_speedup_exponent == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_query_exponents(np.array([0.5]), i1=0.3)
        with pytest.raises(ValueError):
            split_query_exponents(np.array([0.5, 0.2]), i1=0.0)
        with pytest.raises(ValueError):
            split_query_exponents(np.array([0.5, 0.2]), i1=0.3, num_split_candidates=0)


class TestMotivatingExample:
    def test_returns_split_exponents(self):
        result = motivating_example_exponents(dimension=1024, i1=0.3)
        assert isinstance(result, SplitExponents)

    def test_reproducible(self):
        a = motivating_example_exponents(dimension=1024, i1=0.3, seed=5)
        b = motivating_example_exponents(dimension=1024, i1=0.3, seed=5)
        assert a == b

    def test_larger_i1_smaller_single_rho(self):
        easy = motivating_example_exponents(dimension=1024, i1=0.6)
        hard = motivating_example_exponents(dimension=1024, i1=0.2)
        assert easy.single_rho <= hard.single_rho

    def test_adaptive_gain_present(self):
        result = motivating_example_exponents(dimension=4096, i1=0.5, seed=1)
        assert result.skew_adaptive_rho <= result.single_rho + 1e-12

"""Tests for Chernoff helpers and resource-bound predictions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    correlated_pair_similarity_bounds,
    expected_filters_bound,
    required_expected_size,
    space_bound,
    success_probability_lower_bound,
)


class TestChernoff:
    def test_zero_epsilon_gives_trivial_bound(self):
        assert chernoff_upper_tail(10.0, 0.0) == 1.0
        assert chernoff_lower_tail(10.0, 0.0) == 1.0

    def test_bounds_decrease_with_expectation(self):
        assert chernoff_upper_tail(100.0, 0.5) < chernoff_upper_tail(10.0, 0.5)
        assert chernoff_lower_tail(100.0, 0.5) < chernoff_lower_tail(10.0, 0.5)

    def test_bounds_decrease_with_epsilon(self):
        assert chernoff_upper_tail(50.0, 0.8) < chernoff_upper_tail(50.0, 0.2)

    def test_lower_tail_tighter_than_upper(self):
        """Lemma 4: the lower tail has constant 2 in the denominator, the upper 3."""
        assert chernoff_lower_tail(50.0, 0.3) <= chernoff_upper_tail(50.0, 0.3)

    def test_max_weight_loosens_bound(self):
        assert chernoff_upper_tail(50.0, 0.3, max_weight=2.0) > chernoff_upper_tail(
            50.0, 0.3, max_weight=1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1.0, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(1.0, -0.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(1.0, 0.5, max_weight=0.0)

    def test_empirical_tail_respects_bound(self):
        """Monte-Carlo check that the Lemma 4 upper bound actually holds."""
        rng = np.random.default_rng(0)
        n, p, epsilon = 400, 0.1, 0.5
        expectation = n * p
        exceed = 0
        trials = 2000
        for _ in range(trials):
            sample = rng.binomial(n, p)
            if sample >= (1 + epsilon) * expectation:
                exceed += 1
        assert exceed / trials <= chernoff_upper_tail(expectation, epsilon) + 0.02


class TestResourceBounds:
    def test_expected_filters_bound(self):
        assert expected_filters_bound(1000, 0.5) == pytest.approx(1.1 * 1000**0.5)

    def test_expected_filters_validation(self):
        with pytest.raises(ValueError):
            expected_filters_bound(0, 0.5)
        with pytest.raises(ValueError):
            expected_filters_bound(10, -0.1)
        with pytest.raises(ValueError):
            expected_filters_bound(10, 0.5, slack=0.0)

    def test_required_expected_size(self):
        assert required_expected_size(1000, 10.0) == pytest.approx(10.0 * np.log(1000))
        assert required_expected_size(1, 10.0) == 0.0

    def test_required_expected_size_validation(self):
        with pytest.raises(ValueError):
            required_expected_size(100, 0.0)

    def test_space_bound_dominant_terms(self):
        value = space_bound(1000, 0.5, dimension=50, slack=1.0)
        assert value == pytest.approx(1000**1.5 + 50 * 1000)

    def test_space_bound_validation(self):
        with pytest.raises(ValueError):
            space_bound(100, 0.5, dimension=0)


class TestLemma10Bounds:
    def test_returns_paper_constants(self):
        close, far = correlated_pair_similarity_bounds(np.full(10, 0.1), alpha=0.65)
        assert close == pytest.approx(0.65 / 1.3)
        assert far == pytest.approx(0.65 / 1.5)
        assert far < close

    def test_precondition_enforced(self):
        with pytest.raises(ValueError):
            correlated_pair_similarity_bounds(np.full(10, 0.4), alpha=0.5)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            correlated_pair_similarity_bounds(np.full(3, 0.1), alpha=0.0)


class TestSuccessProbability:
    def test_tiny_dataset_certain(self):
        assert success_probability_lower_bound(2, 1) == 1.0

    def test_increases_with_repetitions(self):
        small = success_probability_lower_bound(1000, 2)
        large = success_probability_lower_bound(1000, 20)
        assert large > small

    def test_many_repetitions_approach_one(self):
        assert success_probability_lower_bound(1000, 200) > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            success_probability_lower_bound(1000, 0)

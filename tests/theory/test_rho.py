"""Tests for the ρ-exponent solvers (Theorems 1 and 2, Section 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.theory.rho import (
    balanced_correlated_rho,
    chosen_path_rho,
    minhash_rho,
    prefix_filter_exponent,
    solve_adversarial_rho,
    solve_adversarial_rho_weighted,
    solve_correlated_rho,
    solve_correlated_rho_weighted,
)


class TestAdversarialRho:
    def test_balanced_case_closed_form(self):
        """With all p_i = p the equation gives p^rho = b1, i.e. rho = log b1 / log p."""
        p, b1 = 0.2, 0.5
        rho = solve_adversarial_rho(np.full(300, p), b1)
        assert rho == pytest.approx(math.log(b1) / math.log(p), abs=1e-6)

    def test_paper_example_b1_one_third(self):
        """Section 7.1: p_a = 1/4, p_b = n^{-0.9}, b1 = 1/3 gives rho ≈ log(2/3)/log(1/4)."""
        n = 10**9
        probabilities = np.concatenate([np.full(200, 0.25), np.full(200, n**-0.9)])
        rho = solve_adversarial_rho(probabilities, 1.0 / 3.0)
        assert rho == pytest.approx(math.log(2.0 / 3.0) / math.log(0.25), abs=5e-3)
        assert rho < 0.30

    def test_paper_example_b1_two_thirds_near_zero(self):
        """Section 7.1: at b1 = 2/3 the exponent tends to zero."""
        n = 10**9
        probabilities = np.concatenate([np.full(200, 0.25), np.full(200, n**-0.9)])
        rho = solve_adversarial_rho(probabilities, 2.0 / 3.0)
        assert rho < 0.05

    def test_monotone_decreasing_in_b1(self):
        probabilities = np.concatenate([np.full(50, 0.3), np.full(50, 0.01)])
        rhos = [solve_adversarial_rho(probabilities, b1) for b1 in (0.2, 0.4, 0.6, 0.8)]
        assert all(earlier >= later for earlier, later in zip(rhos, rhos[1:]))

    def test_skew_reduces_rho(self):
        """For the same b1 and mean probability, a skewed profile gives smaller rho."""
        b1 = 0.4
        uniform = np.full(100, 0.1)
        skewed = np.concatenate([np.full(50, 0.19), np.full(50, 0.01)])
        assert solve_adversarial_rho(skewed, b1) < solve_adversarial_rho(uniform, b1)

    def test_b1_one_gives_zero_like_solution(self):
        rho = solve_adversarial_rho(np.full(10, 0.5), 1.0)
        assert rho == 0.0

    def test_all_ones_impossible(self):
        assert solve_adversarial_rho(np.ones(10), 0.5) == math.inf

    def test_zero_probabilities_handled(self):
        probabilities = np.concatenate([np.full(10, 0.2), np.zeros(10)])
        rho = solve_adversarial_rho(probabilities, 0.4)
        assert 0.0 <= rho < 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            solve_adversarial_rho(np.array([]), 0.5)
        with pytest.raises(ValueError):
            solve_adversarial_rho(np.array([0.5]), 0.0)
        with pytest.raises(ValueError):
            solve_adversarial_rho(np.array([1.5]), 0.5)

    def test_solution_satisfies_equation(self):
        probabilities = np.concatenate([np.full(30, 0.3), np.full(70, 0.02)])
        b1 = 0.45
        rho = solve_adversarial_rho(probabilities, b1)
        assert float(np.sum(probabilities**rho)) <= b1 * probabilities.size + 1e-6

    def test_weighted_solver_matches_unweighted(self):
        probabilities = np.array([0.3, 0.02])
        weights = np.array([30.0, 70.0])
        materialised = np.concatenate([np.full(30, 0.3), np.full(70, 0.02)])
        assert solve_adversarial_rho_weighted(probabilities, weights, 0.45) == pytest.approx(
            solve_adversarial_rho(materialised, 0.45), abs=1e-9
        )

    def test_weighted_solver_validation(self):
        with pytest.raises(ValueError):
            solve_adversarial_rho_weighted(np.array([0.3]), np.array([1.0, 2.0]), 0.45)
        with pytest.raises(ValueError):
            solve_adversarial_rho_weighted(np.array([0.3]), np.array([-1.0]), 0.45)


class TestCorrelatedRho:
    def test_balanced_case_matches_closed_form(self):
        """The no-skew case recovers the Chosen Path bound log(p + a(1-p))/log(p)."""
        p, alpha = 0.15, 2.0 / 3.0
        rho = solve_correlated_rho(np.full(500, p), alpha)
        assert rho == pytest.approx(balanced_correlated_rho(p, alpha), abs=1e-9)

    def test_solution_satisfies_equation(self):
        probabilities = np.concatenate([np.full(40, 0.25), np.full(400, 0.02)])
        alpha = 0.6
        rho = solve_correlated_rho(probabilities, alpha)
        conditional = probabilities * (1 - alpha) + alpha
        lhs = float(np.sum(probabilities ** (1 + rho) / conditional))
        assert lhs == pytest.approx(float(probabilities.sum()), rel=1e-6)

    def test_monotone_decreasing_in_alpha(self):
        probabilities = np.concatenate([np.full(40, 0.25), np.full(400, 0.02)])
        rhos = [solve_correlated_rho(probabilities, alpha) for alpha in (0.2, 0.4, 0.6, 0.8)]
        assert all(earlier > later for earlier, later in zip(rhos, rhos[1:]))

    def test_skew_reduces_rho_below_chosen_path(self):
        """The Figure 1 claim: on the two-block profile our rho is strictly
        below the Chosen Path rho computed from expected similarities."""
        alpha = 2.0 / 3.0
        for p in (0.1, 0.2, 0.4):
            probabilities = np.concatenate([np.full(500, p), np.full(500, p / 8.0)])
            ours = solve_correlated_rho(probabilities, alpha)
            expected_size = float(probabilities.sum())
            b2 = float(np.sum(probabilities**2)) / expected_size
            b1 = float(np.sum(probabilities**2 * (1 - alpha) + probabilities * alpha)) / expected_size
            baseline = chosen_path_rho(b1, b2)
            assert ours < baseline

    def test_no_skew_matches_chosen_path(self):
        """With a uniform profile the two exponents coincide (asymptotically)."""
        alpha, p = 2.0 / 3.0, 0.1
        probabilities = np.full(1000, p)
        ours = solve_correlated_rho(probabilities, alpha)
        b2 = p
        b1 = alpha + (1 - alpha) * p
        assert ours == pytest.approx(chosen_path_rho(b1, b2), abs=1e-9)

    def test_extreme_skew_gives_tiny_rho(self):
        """Section 7.2: the extreme-skew correlated instance has rho -> 0.

        4 C log n items at 1/4 plus n^0.9 C log n items at n^-0.9; the rare
        block is handled via the weighted solver (it has ~n^0.9 items).
        """
        capital_c = 20.0
        previous = None
        for n in (10**6, 10**9, 10**12):
            log_n = math.log(n)
            probabilities = np.array([0.25, float(n) ** -0.9])
            weights = np.array([4.0 * capital_c * log_n, (float(n) ** 0.9) * capital_c * log_n])
            rho = solve_correlated_rho_weighted(probabilities, weights, 2.0 / 3.0)
            assert rho < 0.1
            if previous is not None:
                assert rho <= previous + 1e-9  # tends to zero as n grows
            previous = rho

    def test_weighted_solver_matches_unweighted(self):
        probabilities = np.array([0.25, 0.02])
        weights = np.array([40.0, 400.0])
        materialised = np.concatenate([np.full(40, 0.25), np.full(400, 0.02)])
        assert solve_correlated_rho_weighted(probabilities, weights, 0.6) == pytest.approx(
            solve_correlated_rho(materialised, 0.6), abs=1e-9
        )

    def test_weighted_solver_validation(self):
        with pytest.raises(ValueError):
            solve_correlated_rho_weighted(np.array([0.2]), np.array([1.0, 2.0]), 0.5)
        with pytest.raises(ValueError):
            solve_correlated_rho_weighted(np.array([0.2]), np.array([-1.0]), 0.5)

    def test_alpha_one_gives_zero(self):
        rho = solve_correlated_rho(np.full(100, 0.2), 1.0)
        assert rho == pytest.approx(math.log(1.0) / math.log(0.2), abs=1e-6) or rho >= 0.0
        assert rho < 1e-6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            solve_correlated_rho(np.array([]), 0.5)
        with pytest.raises(ValueError):
            solve_correlated_rho(np.array([0.5]), 0.0)


class TestBaselineExponents:
    def test_chosen_path_known_value(self):
        assert chosen_path_rho(0.5, 0.25) == pytest.approx(0.5)

    def test_chosen_path_validation(self):
        with pytest.raises(ValueError):
            chosen_path_rho(0.5, 0.5)
        with pytest.raises(ValueError):
            chosen_path_rho(0.0, 0.25)
        with pytest.raises(ValueError):
            chosen_path_rho(0.5, 1.0)

    def test_chosen_path_b1_one(self):
        assert chosen_path_rho(1.0, 0.5) == 0.0

    def test_minhash_known_value(self):
        assert minhash_rho(0.5, 0.25) == pytest.approx(0.5)

    def test_minhash_validation(self):
        with pytest.raises(ValueError):
            minhash_rho(0.3, 0.5)

    def test_prefix_filter_extreme_skew(self):
        """Rarest item has probability n^{-0.9}: exponent ≈ 0.1 (Section 7.1)."""
        n = 10**6
        probabilities = np.concatenate([np.full(100, 0.25), np.full(100, n**-0.9)])
        assert prefix_filter_exponent(probabilities, n) == pytest.approx(0.1, abs=1e-9)

    def test_prefix_filter_no_rare_items(self):
        """All probabilities Theta(1): the exponent is 1 (no useful prefix)."""
        assert prefix_filter_exponent(np.full(50, 0.2), 10**6) > 0.8

    def test_prefix_filter_zero_probability_item(self):
        assert prefix_filter_exponent(np.array([0.5, 0.0]), 1000) == 0.0

    def test_prefix_filter_validation(self):
        with pytest.raises(ValueError):
            prefix_filter_exponent(np.array([0.5]), 1)


class TestBalancedClosedForm:
    def test_matches_paper_related_work_formula(self):
        """rho = log(beta + alpha(1-beta)) / log(beta), the improved-MinHash bound."""
        beta, alpha = 0.05, 0.5
        expected = math.log(beta + alpha * (1 - beta)) / math.log(beta)
        assert balanced_correlated_rho(beta, alpha) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_correlated_rho(0.0, 0.5)
        with pytest.raises(ValueError):
            balanced_correlated_rho(0.5, 0.0)

    def test_in_unit_interval(self):
        for p in (0.01, 0.1, 0.3):
            for alpha in (0.1, 0.5, 0.9):
                assert 0.0 < balanced_correlated_rho(p, alpha) < 1.0

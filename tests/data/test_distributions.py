"""Tests for the product distribution D[p_1, ..., p_d]."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import ItemDistribution, sample_dataset


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ItemDistribution([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ItemDistribution([0.5, 1.5])
        with pytest.raises(ValueError):
            ItemDistribution([-0.1])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            ItemDistribution(np.zeros((2, 2)))

    def test_probabilities_read_only(self):
        distribution = ItemDistribution([0.1, 0.2])
        with pytest.raises(ValueError):
            distribution.probabilities[0] = 0.9

    def test_equality(self):
        assert ItemDistribution([0.1, 0.2]) == ItemDistribution([0.1, 0.2])
        assert ItemDistribution([0.1, 0.2]) != ItemDistribution([0.2, 0.1])

    def test_from_counts(self):
        distribution = ItemDistribution.from_counts([5, 10, 0], total=20)
        assert np.allclose(distribution.probabilities, [0.25, 0.5, 0.0])

    def test_from_counts_invalid_total(self):
        with pytest.raises(ValueError):
            ItemDistribution.from_counts([1], total=0)


class TestMoments:
    def test_expected_size(self):
        distribution = ItemDistribution([0.5, 0.25, 0.25])
        assert distribution.expected_size == pytest.approx(1.0)

    def test_expected_intersection(self):
        distribution = ItemDistribution([0.5, 0.5])
        assert distribution.expected_intersection == pytest.approx(0.5)

    def test_expected_similarity_uniform(self):
        # For all p_i = p, the uncorrelated similarity estimate is p.
        distribution = ItemDistribution(np.full(100, 0.2))
        assert distribution.expected_similarity() == pytest.approx(0.2)

    def test_expected_correlated_similarity_at_full_correlation(self):
        distribution = ItemDistribution(np.full(100, 0.2))
        assert distribution.expected_correlated_similarity(1.0) == pytest.approx(1.0)

    def test_expected_correlated_similarity_interpolates(self):
        distribution = ItemDistribution(np.full(100, 0.2))
        alpha = 0.5
        expected = alpha + (1.0 - alpha) * 0.2
        assert distribution.expected_correlated_similarity(alpha) == pytest.approx(expected)

    def test_conditional_probabilities(self):
        distribution = ItemDistribution([0.1, 0.4])
        conditional = distribution.conditional_probabilities(0.5)
        assert np.allclose(conditional, [0.55, 0.7])

    def test_conditional_probabilities_invalid_alpha(self):
        with pytest.raises(ValueError):
            ItemDistribution([0.1]).conditional_probabilities(2.0)

    def test_validate_paper_assumptions(self):
        ItemDistribution([0.5, 0.1]).validate_paper_assumptions()
        with pytest.raises(ValueError):
            ItemDistribution([0.7]).validate_paper_assumptions()


class TestSampling:
    def test_sample_within_universe(self):
        distribution = ItemDistribution(np.full(30, 0.3))
        sample = distribution.sample(np.random.default_rng(0))
        assert all(0 <= item < 30 for item in sample)

    def test_sample_many_count(self):
        distribution = ItemDistribution(np.full(30, 0.3))
        samples = distribution.sample_many(25, np.random.default_rng(0))
        assert len(samples) == 25

    def test_sample_many_negative_count(self):
        with pytest.raises(ValueError):
            ItemDistribution([0.5]).sample_many(-1, np.random.default_rng(0))

    def test_sample_mean_size_close_to_expectation(self):
        distribution = ItemDistribution(np.full(200, 0.1))
        samples = distribution.sample_many(400, np.random.default_rng(1))
        mean_size = np.mean([len(sample) for sample in samples])
        assert abs(mean_size - 20.0) < 2.0

    def test_zero_probability_item_never_sampled(self):
        probabilities = np.full(50, 0.5)
        probabilities[7] = 0.0
        distribution = ItemDistribution(probabilities)
        samples = distribution.sample_many(200, np.random.default_rng(2))
        assert all(7 not in sample for sample in samples)

    def test_probability_one_item_always_sampled(self):
        probabilities = np.full(20, 0.1)
        probabilities[3] = 1.0
        distribution = ItemDistribution(probabilities)
        samples = distribution.sample_many(50, np.random.default_rng(3))
        assert all(3 in sample for sample in samples)

    def test_item_frequency_matches_probability(self):
        probabilities = np.array([0.8, 0.05, 0.5])
        distribution = ItemDistribution(probabilities)
        samples = distribution.sample_many(2000, np.random.default_rng(4))
        counts = np.zeros(3)
        for sample in samples:
            for item in sample:
                counts[item] += 1
        assert np.allclose(counts / 2000.0, probabilities, atol=0.05)


class TestCorrelatedSampling:
    def test_alpha_one_copies_exactly(self):
        distribution = ItemDistribution(np.full(40, 0.2))
        x = frozenset({1, 5, 9})
        q = distribution.sample_correlated(x, 1.0, np.random.default_rng(0))
        assert q == x

    def test_alpha_zero_is_independent_sample(self):
        distribution = ItemDistribution(np.full(2000, 0.01))
        x = frozenset(range(100))
        q = distribution.sample_correlated(x, 0.0, np.random.default_rng(1))
        # With alpha=0, q ~ D independent of x; overlap should be tiny.
        assert len(q & x) <= 6

    def test_marginal_distribution_preserved(self):
        """If x ~ D and q ~ D_alpha(x), then q ~ D (Definition 3 remark)."""
        probabilities = np.array([0.4, 0.1, 0.25, 0.05])
        distribution = ItemDistribution(probabilities)
        rng = np.random.default_rng(5)
        counts = np.zeros(4)
        trials = 3000
        for _ in range(trials):
            x = distribution.sample(rng)
            q = distribution.sample_correlated(x, 0.6, rng)
            for item in q:
                counts[item] += 1
        assert np.allclose(counts / trials, probabilities, atol=0.04)

    def test_correlated_query_has_larger_overlap_than_independent(self):
        distribution = ItemDistribution(np.full(300, 0.05))
        rng = np.random.default_rng(6)
        x = distribution.sample(rng)
        correlated = distribution.sample_correlated(x, 0.8, rng)
        independent = distribution.sample(rng)
        assert len(correlated & x) > len(independent & x)

    def test_rejects_out_of_universe_vector(self):
        distribution = ItemDistribution(np.full(10, 0.2))
        with pytest.raises(ValueError):
            distribution.sample_correlated({100}, 0.5, np.random.default_rng(0))

    def test_rejects_bad_alpha(self):
        distribution = ItemDistribution(np.full(10, 0.2))
        with pytest.raises(ValueError):
            distribution.sample_correlated({1}, 1.5, np.random.default_rng(0))


class TestRestrictedTo:
    def test_restriction_order(self):
        distribution = ItemDistribution([0.1, 0.2, 0.3])
        assert np.allclose(distribution.restricted_to([2, 0]), [0.3, 0.1])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            ItemDistribution([0.1]).restricted_to([5])


class TestSampleDataset:
    def test_reproducible(self):
        distribution = ItemDistribution(np.full(60, 0.2))
        a = sample_dataset(distribution, 30, seed=7)
        b = sample_dataset(distribution, 30, seed=7)
        assert a == b

    def test_drop_empty(self):
        distribution = ItemDistribution(np.full(3, 0.01))
        vectors = sample_dataset(distribution, 200, seed=1, drop_empty=True)
        assert all(len(vector) > 0 for vector in vectors)

    def test_keep_empty(self):
        distribution = ItemDistribution(np.full(3, 0.01))
        vectors = sample_dataset(distribution, 200, seed=1, drop_empty=False)
        assert len(vectors) == 200

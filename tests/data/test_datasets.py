"""Tests for the SetCollection container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import SetCollection
from repro.data.distributions import ItemDistribution


class TestConstruction:
    def test_infers_dimension(self):
        collection = SetCollection([{1, 5}, {9}])
        assert collection.dimension == 10

    def test_explicit_dimension(self):
        collection = SetCollection([{1}], dimension=100)
        assert collection.dimension == 100

    def test_dimension_too_small_rejected(self):
        with pytest.raises(ValueError):
            SetCollection([{10}], dimension=5)

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            SetCollection([{-1}])

    def test_empty_collection(self):
        collection = SetCollection([])
        assert len(collection) == 0
        assert collection.dimension == 0

    def test_iteration_and_indexing(self):
        collection = SetCollection([{1}, {2, 3}])
        assert collection[1] == frozenset({2, 3})
        assert list(collection) == [frozenset({1}), frozenset({2, 3})]

    def test_equality(self):
        assert SetCollection([{1}], dimension=5) == SetCollection([{1}], dimension=5)
        assert SetCollection([{1}], dimension=5) != SetCollection([{1}], dimension=6)


class TestStatistics:
    def test_sizes(self):
        collection = SetCollection([{1, 2}, {3}, set()])
        assert collection.sizes().tolist() == [2, 1, 0]

    def test_average_size(self):
        collection = SetCollection([{1, 2}, {3, 4, 5, 6}])
        assert collection.average_size() == 3.0

    def test_average_size_empty(self):
        assert SetCollection([]).average_size() == 0.0

    def test_item_counts(self):
        collection = SetCollection([{0, 1}, {1}, {1, 2}])
        assert collection.item_counts().tolist() == [1, 3, 1]

    def test_item_frequencies(self):
        collection = SetCollection([{0}, {0, 1}])
        assert np.allclose(collection.item_frequencies(), [1.0, 0.5])

    def test_frequencies_cached_and_readonly(self):
        collection = SetCollection([{0}])
        first = collection.item_frequencies()
        assert collection.item_frequencies() is first
        with pytest.raises(ValueError):
            first[0] = 0.3

    def test_empirical_distribution(self):
        collection = SetCollection([{0}, {0, 1}])
        distribution = collection.empirical_distribution()
        assert isinstance(distribution, ItemDistribution)
        assert np.allclose(distribution.probabilities, [1.0, 0.5])


class TestTransformations:
    def test_subset(self):
        collection = SetCollection([{1}, {2}, {3}])
        subset = collection.subset([0, 2])
        assert list(subset) == [frozenset({1}), frozenset({3})]
        assert subset.dimension == collection.dimension

    def test_filter_min_size(self):
        collection = SetCollection([{1}, {2, 3}, set()])
        filtered = collection.filter_min_size(2)
        assert len(filtered) == 1

    def test_remap_by_frequency_descending(self):
        collection = SetCollection([{5}, {5}, {5, 2}, {2}, {9}])
        remapped, permutation = collection.remap_by_frequency(descending=True)
        # Item 5 (3 occurrences) becomes item 0, item 2 (2 occurrences) item 1.
        assert permutation[5] == 0
        assert permutation[2] == 1
        assert remapped.item_counts()[0] == 3

    def test_remap_preserves_set_sizes(self):
        collection = SetCollection([{1, 4, 7}, {2, 4}])
        remapped, _permutation = collection.remap_by_frequency()
        assert sorted(len(s) for s in remapped) == sorted(len(s) for s in collection)

    def test_concatenate(self):
        a = SetCollection([{1}], dimension=5)
        b = SetCollection([{7}], dimension=10)
        combined = a.concatenate(b)
        assert len(combined) == 2
        assert combined.dimension == 10

    def test_from_distribution(self):
        distribution = ItemDistribution(np.full(20, 0.3))
        collection = SetCollection.from_distribution(distribution, count=15, seed=0)
        assert collection.dimension == 20
        assert 0 < len(collection) <= 15

"""Tests for the synthetic benchmark-like dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.analysis import independence_ratio, skew_summary
from repro.data.generators import (
    BENCHMARK_PROFILES,
    BenchmarkProfile,
    all_benchmark_names,
    generate_benchmark_like,
    generate_topic_model,
)


class TestProfiles:
    def test_all_ten_datasets_present(self):
        expected = {
            "AOL",
            "BMS-POS",
            "DBLP",
            "ENRON",
            "FLICKR",
            "KOSARAK",
            "LIVEJOURNAL",
            "NETFLIX",
            "ORKUT",
            "SPOTIFY",
        }
        assert set(BENCHMARK_PROFILES) == expected
        assert set(all_benchmark_names()) == expected

    def test_dependence_ordering_matches_paper(self):
        """SPOTIFY and KOSARAK are the most dependent datasets in Table 1."""
        dependence = {name: profile.dependence for name, profile in BENCHMARK_PROFILES.items()}
        assert dependence["SPOTIFY"] == max(dependence.values())
        assert dependence["KOSARAK"] > dependence["DBLP"]
        assert dependence["KOSARAK"] > dependence["AOL"]


class TestTopicModel:
    def test_respects_num_sets(self):
        probabilities = np.full(100, 0.05)
        collection = generate_topic_model(probabilities, 40, dependence=0.2, num_topics=5, seed=0)
        assert len(collection) == 40
        assert collection.dimension == 100

    def test_zero_dependence_matches_marginals(self):
        probabilities = np.full(200, 0.1)
        collection = generate_topic_model(probabilities, 400, dependence=0.0, num_topics=5, seed=1)
        assert abs(collection.average_size() - 20.0) < 2.0

    def test_zero_dependence_is_nearly_independent(self):
        probabilities = np.full(60, 0.15)
        collection = generate_topic_model(probabilities, 500, dependence=0.0, num_topics=5, seed=2)
        ratio = independence_ratio(collection, subset_size=2, num_samples=500, seed=0)
        assert 0.7 < ratio < 1.4

    def test_high_dependence_increases_ratio(self):
        probabilities = np.full(60, 0.05)
        independent = generate_topic_model(probabilities, 500, dependence=0.0, num_topics=4, seed=3)
        dependent = generate_topic_model(probabilities, 500, dependence=0.7, num_topics=4, seed=3)
        ratio_independent = independence_ratio(independent, 2, num_samples=600, seed=1)
        ratio_dependent = independence_ratio(dependent, 2, num_samples=600, seed=1)
        assert ratio_dependent > ratio_independent

    def test_invalid_dependence(self):
        with pytest.raises(ValueError):
            generate_topic_model(np.full(10, 0.1), 5, dependence=1.0, num_topics=2, seed=0)

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            generate_topic_model(np.full(10, 0.1), 5, dependence=0.1, num_topics=0, seed=0)

    def test_reproducible(self):
        probabilities = np.full(50, 0.1)
        a = generate_topic_model(probabilities, 20, 0.3, 5, seed=7)
        b = generate_topic_model(probabilities, 20, 0.3, 5, seed=7)
        assert list(a) == list(b)


class TestBenchmarkLike:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_benchmark_like("NOT-A-DATASET")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_benchmark_like("DBLP", scale=0.0)

    def test_scale_controls_size(self):
        small = generate_benchmark_like("DBLP", scale=0.05, seed=0)
        large = generate_benchmark_like("DBLP", scale=0.15, seed=0)
        assert len(large) > len(small)
        assert large.dimension > small.dimension

    def test_case_insensitive_name(self):
        assert len(generate_benchmark_like("dblp", scale=0.05, seed=0)) > 0

    def test_generated_data_is_skewed(self):
        collection = generate_benchmark_like("KOSARAK", scale=0.2, seed=1)
        summary = skew_summary(collection)
        assert summary.gini > 0.3
        assert summary.top_10_percent_mass > 0.3

    def test_explicit_profile(self):
        profile = BenchmarkProfile("CUSTOM", 50, 80, 4.0, 0.5, 1.2, 0.1, 0.2, num_topics=4)
        collection = generate_benchmark_like("ignored", profile=profile, seed=0)
        assert len(collection) == 50
        assert collection.dimension == 80

    def test_average_size_in_reasonable_range(self):
        profile = BENCHMARK_PROFILES["DBLP"]
        collection = generate_benchmark_like("DBLP", scale=0.2, seed=2)
        # The generator targets the profile's average size approximately.
        assert 0.3 * profile.average_size < collection.average_size() < 3.0 * profile.average_size

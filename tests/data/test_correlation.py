"""Tests for correlated-query and planted-pair generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.correlation import (
    correlated_queries,
    correlated_query,
    plant_correlated_pairs,
)
from repro.data.distributions import ItemDistribution
from repro.similarity.measures import braun_blanquet


@pytest.fixture(scope="module")
def distribution() -> ItemDistribution:
    return ItemDistribution(np.full(500, 0.04))


class TestCorrelatedQuery:
    def test_reproducible(self, distribution):
        x = frozenset(range(0, 40, 2))
        assert correlated_query(distribution, x, 0.7, seed=3) == correlated_query(
            distribution, x, 0.7, seed=3
        )

    def test_different_seeds_differ(self, distribution):
        x = frozenset(range(0, 40, 2))
        assert correlated_query(distribution, x, 0.7, seed=3) != correlated_query(
            distribution, x, 0.7, seed=4
        )

    def test_batch_matches_length(self, distribution):
        targets = [frozenset({i, i + 1}) for i in range(0, 20, 2)]
        queries = correlated_queries(distribution, targets, 0.5, seed=0)
        assert len(queries) == len(targets)

    def test_batch_reproducible(self, distribution):
        targets = [frozenset({i, i + 1}) for i in range(0, 20, 2)]
        assert correlated_queries(distribution, targets, 0.5, seed=1) == correlated_queries(
            distribution, targets, 0.5, seed=1
        )


class TestPlantCorrelatedPairs:
    def test_count_and_pairs(self, distribution):
        vectors, pairs = plant_correlated_pairs(distribution, count=50, num_pairs=5, alpha=0.8, seed=0)
        assert len(vectors) == 50
        assert len(pairs) == 5

    def test_pair_indices_valid(self, distribution):
        vectors, pairs = plant_correlated_pairs(distribution, count=40, num_pairs=4, alpha=0.8, seed=1)
        for pair in pairs:
            assert 0 <= pair.first_index < len(vectors)
            assert 0 <= pair.second_index < len(vectors)
            assert pair.first_index != pair.second_index
            assert pair.alpha == 0.8

    def test_planted_pairs_are_similar(self, distribution):
        """Planted pairs should have much higher similarity than random pairs."""
        vectors, pairs = plant_correlated_pairs(
            distribution, count=60, num_pairs=6, alpha=0.9, seed=2
        )
        planted_similarities = [
            braun_blanquet(vectors[pair.first_index], vectors[pair.second_index])
            for pair in pairs
        ]
        random_similarities = [
            braun_blanquet(vectors[i], vectors[i + 1]) for i in range(0, 20, 2)
        ]
        assert min(planted_similarities) > max(random_similarities)

    def test_no_pairs(self, distribution):
        vectors, pairs = plant_correlated_pairs(distribution, count=10, num_pairs=0, alpha=0.5, seed=0)
        assert len(vectors) == 10
        assert pairs == []

    def test_too_many_pairs_rejected(self, distribution):
        with pytest.raises(ValueError):
            plant_correlated_pairs(distribution, count=10, num_pairs=6, alpha=0.5, seed=0)

    def test_invalid_count(self, distribution):
        with pytest.raises(ValueError):
            plant_correlated_pairs(distribution, count=0, num_pairs=0, alpha=0.5, seed=0)

    def test_no_empty_anchor_vectors(self):
        sparse = ItemDistribution(np.full(20, 0.02))
        vectors, pairs = plant_correlated_pairs(sparse, count=30, num_pairs=3, alpha=0.9, seed=3)
        for pair in pairs:
            assert len(vectors[pair.first_index]) > 0

    def test_reproducible(self, distribution):
        first = plant_correlated_pairs(distribution, count=30, num_pairs=3, alpha=0.7, seed=9)
        second = plant_correlated_pairs(distribution, count=30, num_pairs=3, alpha=0.7, seed=9)
        assert first[0] == second[0]
        assert first[1] == second[1]

"""Tests for probability estimation and parameter recommendation (Section 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import SetCollection
from repro.data.distributions import ItemDistribution
from repro.data.estimation import (
    estimate_probabilities,
    estimation_error_bound,
    recommend_parameters,
)


@pytest.fixture(scope="module")
def sampled_collection() -> tuple[ItemDistribution, SetCollection]:
    true_distribution = ItemDistribution(
        np.concatenate([np.full(30, 0.4), np.full(200, 0.05)])
    )
    collection = SetCollection.from_distribution(true_distribution, count=600, seed=5)
    return true_distribution, collection


class TestEstimateProbabilities:
    def test_estimates_close_to_truth(self, sampled_collection):
        true_distribution, collection = sampled_collection
        estimated = estimate_probabilities(collection)
        error = np.abs(estimated.probabilities - true_distribution.probabilities)
        assert float(error.max()) < 0.08
        assert float(error.mean()) < 0.02

    def test_smoothing_keeps_unseen_items_positive(self):
        collection = SetCollection([{0}, {0, 1}], dimension=5)
        estimated = estimate_probabilities(collection, smoothing=0.5)
        assert float(estimated.probabilities.min()) > 0.0

    def test_zero_smoothing_reproduces_frequencies(self):
        collection = SetCollection([{0}, {0, 1}], dimension=3)
        estimated = estimate_probabilities(collection, smoothing=0.0, maximum=1.0)
        assert np.allclose(estimated.probabilities, [1.0, 0.5, 0.0])

    def test_clipped_to_maximum(self):
        collection = SetCollection([{0}] * 10, dimension=2)
        estimated = estimate_probabilities(collection, maximum=0.5)
        assert float(estimated.probabilities.max()) <= 0.5

    def test_accepts_plain_iterables(self):
        estimated = estimate_probabilities([{0, 1}, {1, 2}], dimension=4)
        assert estimated.dimension == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_probabilities(SetCollection([], dimension=3))
        with pytest.raises(ValueError):
            estimate_probabilities(SetCollection([{0}]), smoothing=-1.0)
        with pytest.raises(ValueError):
            estimate_probabilities(SetCollection([{0}]), maximum=0.0)


class TestEstimationErrorBound:
    def test_decreases_with_sample_size(self):
        assert estimation_error_bound(10_000) < estimation_error_bound(100)

    def test_increases_with_confidence(self):
        assert estimation_error_bound(1000, confidence=0.999) > estimation_error_bound(
            1000, confidence=0.9
        )

    def test_empirical_coverage(self):
        """The bound actually covers the deviation of an empirical frequency."""
        rng = np.random.default_rng(0)
        true_probability = 0.3
        num_sets = 500
        bound = estimation_error_bound(num_sets, confidence=0.99)
        violations = 0
        for _ in range(200):
            estimate = rng.binomial(num_sets, true_probability) / num_sets
            if abs(estimate - true_probability) > bound:
                violations += 1
        assert violations <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            estimation_error_bound(0)
        with pytest.raises(ValueError):
            estimation_error_bound(10, confidence=1.5)


class TestRecommendParameters:
    def test_recommendation_fields(self, sampled_collection):
        _true, collection = sampled_collection
        recommendation = recommend_parameters(collection, alpha=0.7)
        assert recommendation.repetitions >= 1
        assert 0.0 <= recommendation.expected_rho <= 1.0
        assert recommendation.expected_size > 0.0
        assert recommendation.estimation_error > 0.0

    def test_more_repetitions_for_higher_target(self, sampled_collection):
        _true, collection = sampled_collection
        modest = recommend_parameters(collection, alpha=0.7, target_success=0.5)
        strict = recommend_parameters(collection, alpha=0.7, target_success=0.99)
        assert strict.repetitions > modest.repetitions

    def test_size_requirement_flag(self, sampled_collection):
        _true, collection = sampled_collection
        generous = recommend_parameters(collection, alpha=0.7, capital_c=1.0)
        demanding = recommend_parameters(collection, alpha=0.7, capital_c=1000.0)
        assert generous.meets_size_requirement
        assert not demanding.meets_size_requirement

    def test_recommended_index_works(self, sampled_collection):
        """Build an index with the recommended parameters and check recall."""
        from repro.core.config import CorrelatedIndexConfig
        from repro.core.correlated_index import CorrelatedIndex

        true_distribution, collection = sampled_collection
        alpha = 0.75
        recommendation = recommend_parameters(collection, alpha=alpha, target_success=0.9)
        index = CorrelatedIndex(
            recommendation.distribution,
            config=CorrelatedIndexConfig(
                alpha=alpha, repetitions=min(recommendation.repetitions, 8), seed=9
            ),
        )
        subset = list(collection)[:150]
        index.build(subset)
        rng = np.random.default_rng(11)
        hits = 0
        for target in range(20):
            query = true_distribution.sample_correlated(subset[target], alpha, rng)
            result, _stats = index.query(query)
            if result == target:
                hits += 1
        assert hits >= 14

    def test_validation(self, sampled_collection):
        _true, collection = sampled_collection
        with pytest.raises(ValueError):
            recommend_parameters(collection, alpha=0.0)
        with pytest.raises(ValueError):
            recommend_parameters(collection, alpha=0.5, target_success=1.0)

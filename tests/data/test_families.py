"""Tests for the named probability families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.families import (
    block_probabilities,
    harmonic_probabilities,
    piecewise_zipfian_probabilities,
    two_block_probabilities,
    uniform_probabilities,
    zipfian_probabilities,
)


class TestUniform:
    def test_all_equal(self):
        probabilities = uniform_probabilities(10, 0.3)
        assert np.all(probabilities == 0.3)
        assert probabilities.size == 10

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            uniform_probabilities(0, 0.3)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            uniform_probabilities(5, 1.2)


class TestTwoBlock:
    def test_half_and_half(self):
        probabilities = two_block_probabilities(10, 0.4, 0.05)
        assert np.all(probabilities[:5] == 0.4)
        assert np.all(probabilities[5:] == 0.05)

    def test_custom_fraction(self):
        probabilities = two_block_probabilities(10, 0.4, 0.05, frequent_fraction=0.2)
        assert np.count_nonzero(probabilities == 0.4) == 2

    def test_figure1_shape(self):
        """The Figure 1 setting: half at p, half at p/8."""
        p = 0.2
        probabilities = two_block_probabilities(100, p, p / 8.0)
        assert probabilities.sum() == pytest.approx(50 * p + 50 * p / 8.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            two_block_probabilities(10, 0.4, 0.05, frequent_fraction=1.5)


class TestBlocks:
    def test_sizes_and_values(self):
        probabilities = block_probabilities([3, 2], [0.5, 0.1])
        assert probabilities.tolist() == [0.5, 0.5, 0.5, 0.1, 0.1]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            block_probabilities([3], [0.5, 0.1])

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            block_probabilities([], [])

    def test_zero_total_items_rejected(self):
        with pytest.raises(ValueError):
            block_probabilities([0, 0], [0.5, 0.1])

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            block_probabilities([2], [1.5])


class TestHarmonic:
    def test_follows_one_over_k(self):
        probabilities = harmonic_probabilities(10, maximum=1.0)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[4] == pytest.approx(1.0 / 5.0)

    def test_cap_applied(self):
        probabilities = harmonic_probabilities(10, maximum=0.5)
        assert probabilities[0] == 0.5
        assert probabilities.max() <= 0.5

    def test_expected_size_close_to_log_d(self):
        d = 5000
        probabilities = harmonic_probabilities(d, maximum=1.0)
        assert probabilities.sum() == pytest.approx(np.log(d), rel=0.1)

    def test_monotone_decreasing(self):
        probabilities = harmonic_probabilities(50)
        assert np.all(np.diff(probabilities) <= 0.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            harmonic_probabilities(10, scale=0.0)


class TestZipfian:
    def test_maximum_at_rank_one(self):
        probabilities = zipfian_probabilities(100, exponent=1.0, maximum=0.4)
        assert probabilities[0] == pytest.approx(0.4)

    def test_monotone_decreasing(self):
        probabilities = zipfian_probabilities(100, exponent=1.5)
        assert np.all(np.diff(probabilities) <= 1e-15)

    def test_zero_exponent_is_uniform(self):
        probabilities = zipfian_probabilities(20, exponent=0.0, maximum=0.3)
        assert np.allclose(probabilities, 0.3)

    def test_minimum_floor(self):
        probabilities = zipfian_probabilities(1000, exponent=2.0, maximum=0.5, minimum=1e-4)
        assert probabilities.min() >= 1e-4

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipfian_probabilities(10, exponent=-1.0)


class TestPiecewiseZipfian:
    def test_head_decays_slower_than_tail(self):
        probabilities = piecewise_zipfian_probabilities(
            1000, breakpoints=[0.05], exponents=[0.4, 1.6], maximum=0.5
        )
        log_p = np.log(probabilities)
        log_rank = np.log(np.arange(1, 1001))
        head_slope = np.polyfit(log_rank[2:40], log_p[2:40], 1)[0]
        tail_slope = np.polyfit(log_rank[200:900], log_p[200:900], 1)[0]
        assert tail_slope < head_slope  # tail decays faster (more negative slope)

    def test_monotone_non_increasing(self):
        probabilities = piecewise_zipfian_probabilities(
            500, breakpoints=[0.1], exponents=[0.5, 1.5]
        )
        assert np.all(np.diff(probabilities) <= 1e-12)

    def test_continuity_at_breakpoint(self):
        probabilities = piecewise_zipfian_probabilities(
            1000, breakpoints=[0.1], exponents=[0.5, 2.0], maximum=0.5, minimum=0.0
        )
        boundary = int(0.1 * 1000)
        ratio = probabilities[boundary] / probabilities[boundary - 1]
        assert 0.5 < ratio <= 1.01

    def test_maximum_respected(self):
        probabilities = piecewise_zipfian_probabilities(
            100, breakpoints=[0.2], exponents=[0.3, 1.0], maximum=0.25
        )
        assert probabilities.max() <= 0.25 + 1e-12

    def test_mismatched_exponent_count(self):
        with pytest.raises(ValueError):
            piecewise_zipfian_probabilities(100, breakpoints=[0.1], exponents=[1.0])

    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            piecewise_zipfian_probabilities(
                100, breakpoints=[0.5, 0.1], exponents=[0.5, 1.0, 1.5]
            )

    def test_breakpoints_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            piecewise_zipfian_probabilities(100, breakpoints=[1.5], exponents=[0.5, 1.0])

"""Tests for the Section 8 dataset analyses (Figure 2 / Table 1 statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.analysis import (
    empirical_frequencies,
    frequency_profile,
    independence_ratio,
    skew_summary,
)
from repro.data.datasets import SetCollection
from repro.data.distributions import ItemDistribution
from repro.data.families import zipfian_probabilities


class TestEmpiricalFrequencies:
    def test_sorted_descending(self):
        collection = SetCollection([{0}, {0, 1}, {0, 1, 2}], dimension=4)
        frequencies = empirical_frequencies(collection)
        assert np.all(np.diff(frequencies) <= 0.0)

    def test_sorted_ascending(self):
        collection = SetCollection([{0}, {0, 1}], dimension=3)
        frequencies = empirical_frequencies(collection, descending=False)
        assert np.all(np.diff(frequencies) >= 0.0)

    def test_includes_zero_frequency_items(self):
        collection = SetCollection([{0}], dimension=5)
        assert empirical_frequencies(collection).size == 5


class TestFrequencyProfile:
    def test_axes_lengths_match(self):
        collection = SetCollection([{0, 1}, {1, 2}, {0}], dimension=10)
        profile = frequency_profile(collection)
        assert profile.relative_rank.size == 10
        assert profile.log_rank.size == 10
        assert profile.normalized_log_frequency.size == 10

    def test_relative_rank_in_unit_interval(self):
        collection = SetCollection([{0, 1}], dimension=8)
        profile = frequency_profile(collection)
        assert profile.relative_rank[0] == pytest.approx(1.0 / 8.0)
        assert profile.relative_rank[-1] == pytest.approx(1.0)

    def test_normalized_log_frequency_at_most_one(self):
        """An item present in every set has y = 1 + log_n(1) = 1."""
        collection = SetCollection([{0}, {0}, {0}], dimension=2)
        profile = frequency_profile(collection)
        assert profile.normalized_log_frequency.max() <= 1.0 + 1e-12
        assert profile.normalized_log_frequency[0] == pytest.approx(1.0)

    def test_curve_non_increasing(self):
        rng = np.random.default_rng(0)
        distribution = ItemDistribution(zipfian_probabilities(200, exponent=1.0, maximum=0.5))
        collection = SetCollection(distribution.sample_many(300, rng), dimension=200)
        profile = frequency_profile(collection)
        assert np.all(np.diff(profile.normalized_log_frequency) <= 1e-12)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            frequency_profile(SetCollection([], dimension=5))

    def test_sampled_reduces_points(self):
        collection = SetCollection([{i} for i in range(100)], dimension=100)
        profile = frequency_profile(collection).sampled(10)
        assert profile.relative_rank.size <= 11

    def test_sampled_invalid(self):
        collection = SetCollection([{0}], dimension=2)
        with pytest.raises(ValueError):
            frequency_profile(collection).sampled(0)


class TestIndependenceRatio:
    def test_independent_data_close_to_one(self):
        distribution = ItemDistribution(np.full(50, 0.2))
        collection = SetCollection(
            distribution.sample_many(800, np.random.default_rng(1)), dimension=50
        )
        ratio = independence_ratio(collection, subset_size=2, num_samples=800, seed=0)
        assert 0.8 < ratio < 1.25

    def test_perfectly_dependent_data_large_ratio(self):
        """Sets are either {0..9} or empty-ish: items co-occur far more than predicted."""
        sets = [frozenset(range(10)) if i % 4 == 0 else frozenset({20 + i % 3}) for i in range(200)]
        collection = SetCollection(sets, dimension=30)
        ratio = independence_ratio(collection, subset_size=2, num_samples=500, seed=0)
        assert ratio > 1.5

    def test_triples_deviate_at_least_as_much_as_pairs(self):
        sets = [frozenset(range(8)) if i % 3 == 0 else frozenset({10 + (i % 5)}) for i in range(300)]
        collection = SetCollection(sets, dimension=20)
        pair_ratio = independence_ratio(collection, 2, num_samples=700, seed=1)
        triple_ratio = independence_ratio(collection, 3, num_samples=700, seed=1)
        assert triple_ratio >= pair_ratio * 0.9

    def test_invalid_subset_size(self):
        collection = SetCollection([{0, 1}], dimension=2)
        with pytest.raises(ValueError):
            independence_ratio(collection, subset_size=0)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            independence_ratio(SetCollection([], dimension=5), 2)

    def test_not_enough_items_rejected(self):
        collection = SetCollection([{0}], dimension=1)
        with pytest.raises(ValueError):
            independence_ratio(collection, subset_size=2)

    def test_reproducible(self):
        collection = SetCollection([{0, 1, 2}, {1, 2}, {0, 2}], dimension=3)
        a = independence_ratio(collection, 2, num_samples=100, seed=5)
        b = independence_ratio(collection, 2, num_samples=100, seed=5)
        assert a == b


class TestSkewSummary:
    def test_uniform_data_low_gini(self):
        collection = SetCollection([{i % 20} for i in range(200)], dimension=20)
        summary = skew_summary(collection)
        assert summary.gini < 0.1
        assert summary.zipf_exponent < 0.2

    def test_skewed_data_high_gini(self):
        rng = np.random.default_rng(3)
        distribution = ItemDistribution(zipfian_probabilities(300, exponent=1.2, maximum=0.5))
        collection = SetCollection(distribution.sample_many(400, rng), dimension=300)
        summary = skew_summary(collection)
        assert summary.gini > 0.4
        assert summary.zipf_exponent > 0.5

    def test_empty_collection(self):
        summary = skew_summary(SetCollection([], dimension=5))
        assert summary.gini == 0.0
        assert summary.max_frequency == 0.0

    def test_top_mass_monotone(self):
        rng = np.random.default_rng(4)
        distribution = ItemDistribution(zipfian_probabilities(200, exponent=1.0))
        collection = SetCollection(distribution.sample_many(200, rng), dimension=200)
        summary = skew_summary(collection)
        assert summary.top_1_percent_mass <= summary.top_10_percent_mass <= 1.0

"""Tests for transaction-format I/O."""

from __future__ import annotations

import pytest

from repro.data.datasets import SetCollection
from repro.data.io import (
    read_frequencies,
    read_transactions,
    write_frequencies,
    write_transactions,
)


class TestTransactionsRoundTrip:
    def test_round_trip(self, tmp_path):
        collection = SetCollection([{3, 1, 7}, {2}, {5, 9}], dimension=12)
        path = tmp_path / "data.txt"
        write_transactions(collection, path)
        loaded = read_transactions(path, dimension=12)
        assert list(loaded) == list(collection)
        assert loaded.dimension == 12

    def test_sorted_output(self, tmp_path):
        collection = SetCollection([{9, 1, 4}])
        path = tmp_path / "data.txt"
        write_transactions(collection, path, sort_items=True)
        assert path.read_text().strip() == "1 4 9"

    def test_unsorted_output_allowed(self, tmp_path):
        collection = SetCollection([{9, 1, 4}])
        path = tmp_path / "data.txt"
        write_transactions(collection, path, sort_items=False)
        tokens = set(path.read_text().split())
        assert tokens == {"1", "4", "9"}

    def test_dimension_inferred_on_read(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("0 5\n2\n")
        assert read_transactions(path).dimension == 6

    def test_skip_empty_lines(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n\n3\n")
        loaded = read_transactions(path)
        assert len(loaded) == 2

    def test_keep_empty_lines(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n\n3\n")
        loaded = read_transactions(path, skip_empty=False)
        assert len(loaded) == 3
        assert loaded[1] == frozenset()

    def test_non_integer_token_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 two 3\n")
        with pytest.raises(ValueError, match="non-integer"):
            read_transactions(path)

    def test_negative_item_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 -4\n")
        with pytest.raises(ValueError, match="negative"):
            read_transactions(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert len(read_transactions(path)) == 0


class TestFrequenciesRoundTrip:
    def test_round_trip(self, tmp_path):
        collection = SetCollection([{0, 1}, {1}], dimension=3)
        path = tmp_path / "freq.txt"
        write_frequencies(collection, path)
        frequencies = read_frequencies(path)
        assert frequencies == pytest.approx([0.5, 1.0, 0.0])

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "freq.txt"
        path.write_text("0 0.5 extra\n")
        with pytest.raises(ValueError):
            read_frequencies(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "freq.txt"
        path.write_text("0 0.5\n\n1 0.25\n")
        assert read_frequencies(path) == pytest.approx([0.5, 0.25])

"""Tests for saving and loading built indexes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.serialization import FORMAT_VERSION, load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex


@pytest.fixture()
def adversarial_index(skewed_distribution, skewed_dataset):
    index = SkewAdaptiveIndex(
        skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=31)
    )
    index.build(skewed_dataset[:80])
    return index


@pytest.fixture()
def correlated_index(skewed_distribution, skewed_dataset):
    index = CorrelatedIndex(
        skewed_distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=32)
    )
    index.build(skewed_dataset[:80])
    return index


class TestSaveValidation:
    def test_unbuilt_index_rejected(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(skewed_distribution, b1=0.5)
        with pytest.raises(ValueError):
            save_index(index, tmp_path / "index.json")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_index(object(), tmp_path / "index.json")  # type: ignore[arg-type]

    def test_file_is_json_with_version(self, adversarial_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["config"]["kind"] == "skew_adaptive"


class TestRoundTrip:
    def test_adversarial_round_trip_identical_queries(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "adversarial.json"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, SkewAdaptiveIndex)
        assert loaded.num_indexed == adversarial_index.num_indexed
        assert loaded.total_stored_filters == adversarial_index.total_stored_filters
        for query_id in range(25):
            original_result, original_stats = adversarial_index.query(skewed_dataset[query_id])
            loaded_result, loaded_stats = loaded.query(skewed_dataset[query_id])
            assert original_result == loaded_result
            assert original_stats.candidates_examined == loaded_stats.candidates_examined
            assert original_stats.filters_generated == loaded_stats.filters_generated

    def test_correlated_round_trip_identical_queries(
        self, correlated_index, skewed_distribution, skewed_dataset, tmp_path
    ):
        path = tmp_path / "correlated.json"
        save_index(correlated_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CorrelatedIndex)
        rng = np.random.default_rng(3)
        for target in range(15):
            query = skewed_distribution.sample_correlated(skewed_dataset[target], 0.7, rng)
            assert correlated_index.query(query)[0] == loaded.query(query)[0]

    def test_round_trip_preserves_vectors(self, adversarial_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        for vector_id in range(adversarial_index.num_indexed):
            assert loaded.get_vector(vector_id) == adversarial_index.get_vector(vector_id)

    def test_round_trip_preserves_removals(self, adversarial_index, skewed_dataset, tmp_path):
        adversarial_index.remove(2)
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        result, _stats = loaded.query(skewed_dataset[2], mode="best")
        assert result != 2

    def test_loaded_index_supports_insert(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        new_id = loaded.insert(skewed_dataset[90])
        assert loaded.get_vector(new_id) == skewed_dataset[90]


class TestLoadValidation:
    def test_wrong_version_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_unknown_kind_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(adversarial_index, path)
        payload = json.loads(path.read_text())
        payload["config"]["kind"] = "mystery"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="kind"):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "does_not_exist.json")

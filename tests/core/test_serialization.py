"""Tests for saving and loading built indexes (binary format v2 + legacy v1)."""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.serialization import (
    FORMAT_VERSION,
    LEGACY_JSON_VERSION,
    _save_legacy_v1,
    convert_index_file,
    load_index,
    save_index,
)
from repro.core.skewed_index import SkewAdaptiveIndex


@pytest.fixture()
def adversarial_index(skewed_distribution, skewed_dataset):
    index = SkewAdaptiveIndex(
        skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=31)
    )
    index.build(skewed_dataset[:80])
    return index


@pytest.fixture()
def correlated_index(skewed_distribution, skewed_dataset):
    index = CorrelatedIndex(
        skewed_distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=32)
    )
    index.build(skewed_dataset[:80])
    return index


@pytest.fixture()
def chosen_path_index(skewed_distribution, skewed_dataset):
    index = ChosenPathIndex(
        dimension=skewed_distribution.dimension, b1=0.6, b2=0.3, repetitions=4, seed=33
    )
    index.build(skewed_dataset[:80])
    return index


class TestSaveValidation:
    def test_unbuilt_index_rejected(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(skewed_distribution, b1=0.5)
        with pytest.raises(ValueError):
            save_index(index, tmp_path / "index.bin")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_index(object(), tmp_path / "index.bin")  # type: ignore[arg-type]

    def test_file_is_binary_container_with_version(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        assert zipfile.is_zipfile(path)
        with np.load(path, allow_pickle=False) as container:
            meta = json.loads(bytes(container["meta"]).decode("utf-8"))
        assert meta["format_version"] == FORMAT_VERSION
        assert meta["config"]["kind"] == "skew_adaptive"
        assert set(meta["build_stats"]) == set(
            adversarial_index.build_stats.to_dict()
        )

    def test_no_pickled_objects_in_file(self, adversarial_index, tmp_path):
        """The container must stay loadable with allow_pickle=False."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            for name in container.files:
                assert container[name].dtype != object

    def test_uncompressed_save_supported(self, adversarial_index, tmp_path):
        compressed = tmp_path / "small.bin"
        plain = tmp_path / "large.bin"
        save_index(adversarial_index, compressed)
        save_index(adversarial_index, plain, config=PersistenceConfig(compress=False))
        assert plain.stat().st_size > compressed.stat().st_size
        assert load_index(plain).num_indexed == adversarial_index.num_indexed

    def test_exact_output_path_is_used(self, adversarial_index, tmp_path):
        """numpy must not silently append an .npz suffix."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        assert path.exists()
        assert not (tmp_path / "index.bin.npz").exists()


class TestRoundTrip:
    def test_adversarial_round_trip_identical_queries(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "adversarial.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, SkewAdaptiveIndex)
        assert loaded.num_indexed == adversarial_index.num_indexed
        assert loaded.total_stored_filters == adversarial_index.total_stored_filters
        for query_id in range(25):
            original_result, original_stats = adversarial_index.query(skewed_dataset[query_id])
            loaded_result, loaded_stats = loaded.query(skewed_dataset[query_id])
            assert original_result == loaded_result
            assert original_stats.to_dict() == loaded_stats.to_dict()

    def test_correlated_round_trip_identical_queries(
        self, correlated_index, skewed_distribution, skewed_dataset, tmp_path
    ):
        path = tmp_path / "correlated.bin"
        save_index(correlated_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CorrelatedIndex)
        rng = np.random.default_rng(3)
        for target in range(15):
            query = skewed_distribution.sample_correlated(skewed_dataset[target], 0.7, rng)
            assert correlated_index.query(query)[0] == loaded.query(query)[0]

    def test_chosen_path_round_trip_identical_queries(
        self, chosen_path_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "chosen_path.bin"
        save_index(chosen_path_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, ChosenPathIndex)
        assert loaded.rho == chosen_path_index.rho
        for query_id in range(20):
            assert (
                chosen_path_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )

    def test_batch_queries_identical_after_load(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        queries = skewed_dataset[:40]
        original_results, original_stats = adversarial_index.query_batch(queries)
        loaded_results, loaded_stats = loaded.query_batch(queries)
        assert original_results == loaded_results
        assert [s.to_dict() for s in original_stats.per_query] == [
            s.to_dict() for s in loaded_stats.per_query
        ]

    def test_round_trip_preserves_vectors(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        for vector_id in range(adversarial_index.num_indexed):
            assert loaded.get_vector(vector_id) == adversarial_index.get_vector(vector_id)

    def test_round_trip_preserves_full_build_stats(self, adversarial_index, tmp_path):
        """Every BuildStats field survives, including the extended ones
        (build_seconds, generation_batches) that format v1 silently dropped."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        original = adversarial_index.build_stats.to_dict()
        restored = loaded.build_stats.to_dict()
        assert restored == original
        assert restored["build_seconds"] > 0.0
        assert restored["generation_batches"] > 0

    def test_round_trip_preserves_removals(self, adversarial_index, skewed_dataset, tmp_path):
        adversarial_index.remove(2)
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        result, _stats = loaded.query(skewed_dataset[2], mode="best")
        assert result != 2

    def test_round_trip_after_insert(self, adversarial_index, skewed_dataset, tmp_path):
        """Postings added after the initial build (pending overlay) are saved."""
        inserted_id = adversarial_index.insert(skewed_dataset[90])
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        assert loaded.get_vector(inserted_id) == skewed_dataset[90]
        assert (
            loaded.query(skewed_dataset[90], mode="best")[0]
            == adversarial_index.query(skewed_dataset[90], mode="best")[0]
        )

    def test_loaded_index_supports_insert(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        new_id = loaded.insert(skewed_dataset[90])
        assert loaded.get_vector(new_id) == skewed_dataset[90]

    def test_empty_dataset_round_trip(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3)
        )
        index.build([])
        path = tmp_path / "empty.bin"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_indexed == 0
        assert loaded.query({1, 2, 3})[0] is None


class TestLoadValidation:
    def test_wrong_version_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_unknown_kind_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["config"]["kind"] = "mystery"
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="kind"):
            load_index(path)

    def test_unknown_build_stats_field_rejected(self, adversarial_index, tmp_path):
        """A file claiming BuildStats fields this version does not know must
        fail loudly instead of silently dropping them."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["build_stats"]["from_the_future"] = 42
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="from_the_future"):
            load_index(path)

    def test_truncated_file_rejected(self, adversarial_index, tmp_path):
        """Truncation behind a valid zip magic must still surface as the
        documented ValueError (catchable by the CLI), not BadZipFile."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="not a valid index file"):
            load_index(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01\x02definitely not an index\xff" * 10)
        with pytest.raises(ValueError, match="not a recognised index file"):
            load_index(path)

    def test_out_of_range_posting_ids_rejected(self, adversarial_index, tmp_path):
        """Corrupted posting ids referencing missing vectors fail the
        validate_postings integrity check."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        ids = arrays["rep0000_posting_ids"].astype(np.int64)
        ids[0] = 10_000_000
        arrays["rep0000_posting_ids"] = ids
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_index(path)

    def test_missing_repetition_arrays_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        del arrays["rep0001_posting_ids"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="repetition 1"):
            load_index(path)

    def test_missing_top_level_arrays_rejected(self, adversarial_index, tmp_path):
        """Missing top-level arrays must raise ValueError (catchable by the
        CLI), not leak a KeyError."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        del arrays["vector_items"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="vector_items"):
            load_index(path)

    def test_missing_meta_keys_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        del meta["num_vectors_hint"]
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="num_vectors_hint"):
            load_index(path)

    def test_missing_config_field_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        del meta["config"]["b1"]
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="missing field 'b1'"):
            load_index(path)

    def test_negative_vector_lengths_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        lengths = arrays["vector_lengths"].astype(np.int64)
        lengths[0] += lengths[1]
        lengths[1] = -lengths[1]
        arrays["vector_lengths"] = lengths
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_index(path)

    def test_non_object_meta_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        arrays["meta"] = np.frombuffer(b"[1, 2, 3]", dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="metadata"):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "does_not_exist.bin")


class TestLegacyV1:
    def test_v1_file_still_loads(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        loaded = load_index(path)
        for query_id in range(20):
            assert (
                adversarial_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )

    def test_v1_preserves_removals(self, adversarial_index, skewed_dataset, tmp_path):
        adversarial_index.remove(4)
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        loaded = load_index(path)
        assert loaded.query(skewed_dataset[4], mode="best")[0] != 4

    def test_v1_unknown_version_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 7
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_convert_v1_to_v2(self, adversarial_index, skewed_dataset, tmp_path):
        source = tmp_path / "legacy.json"
        destination = tmp_path / "converted.bin"
        adversarial_index.remove(6)
        _save_legacy_v1(adversarial_index, source)
        convert_index_file(source, destination)
        assert zipfile.is_zipfile(destination)
        loaded = load_index(destination)
        for query_id in range(20):
            assert (
                adversarial_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )
        assert loaded.query(skewed_dataset[6], mode="best")[0] != 6

    def test_convert_is_smaller(self, adversarial_index, tmp_path):
        source = tmp_path / "legacy.json"
        destination = tmp_path / "converted.bin"
        _save_legacy_v1(adversarial_index, source)
        convert_index_file(source, destination)
        assert destination.stat().st_size < source.stat().st_size

    def test_legacy_writer_version_constant(self):
        assert LEGACY_JSON_VERSION == 1
        assert FORMAT_VERSION == 2

"""Tests for saving and loading built indexes (formats v3, v2 and legacy v1).

The single-file ``.npz`` container tests pin ``format_version=2`` explicitly
(v2 stays fully writable as the downgrade path); everything exercising the
default ``save_index`` path now covers the sharded v3 directory layout, and
``TestV3Format`` / ``TestV3Corruption`` / ``TestMmapMode`` cover the
format-specific behaviour.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.serialization import (
    FORMAT_VERSION,
    LEGACY_JSON_VERSION,
    V2_FORMAT_VERSION,
    _save_legacy_v1,
    convert_index_file,
    describe_index_file,
    load_index,
    save_index,
)
from repro.core.skewed_index import SkewAdaptiveIndex

#: Explicit v2 configuration for the single-file container tests.
V2 = PersistenceConfig(format_version=2)


@pytest.fixture()
def adversarial_index(skewed_distribution, skewed_dataset):
    index = SkewAdaptiveIndex(
        skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=31)
    )
    index.build(skewed_dataset[:80])
    return index


@pytest.fixture()
def correlated_index(skewed_distribution, skewed_dataset):
    index = CorrelatedIndex(
        skewed_distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=32)
    )
    index.build(skewed_dataset[:80])
    return index


@pytest.fixture()
def chosen_path_index(skewed_distribution, skewed_dataset):
    index = ChosenPathIndex(
        dimension=skewed_distribution.dimension, b1=0.6, b2=0.3, repetitions=4, seed=33
    )
    index.build(skewed_dataset[:80])
    return index


class TestSaveValidation:
    def test_unbuilt_index_rejected(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(skewed_distribution, b1=0.5)
        with pytest.raises(ValueError):
            save_index(index, tmp_path / "index.bin")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_index(object(), tmp_path / "index.bin")  # type: ignore[arg-type]

    def test_v2_file_is_binary_container_with_version(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        assert zipfile.is_zipfile(path)
        with np.load(path, allow_pickle=False) as container:
            meta = json.loads(bytes(container["meta"]).decode("utf-8"))
        assert meta["format_version"] == V2_FORMAT_VERSION
        assert meta["config"]["kind"] == "skew_adaptive"
        assert set(meta["build_stats"]) == set(
            adversarial_index.build_stats.to_dict()
        )

    def test_no_pickled_objects_in_file(self, adversarial_index, tmp_path):
        """The v2 container must stay loadable with allow_pickle=False."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            for name in container.files:
                assert container[name].dtype != object

    def test_uncompressed_save_supported(self, adversarial_index, tmp_path):
        compressed = tmp_path / "small.bin"
        plain = tmp_path / "large.bin"
        save_index(adversarial_index, compressed, config=V2)
        save_index(
            adversarial_index,
            plain,
            config=PersistenceConfig(format_version=2, compress=False),
        )
        assert plain.stat().st_size > compressed.stat().st_size
        assert load_index(plain).num_indexed == adversarial_index.num_indexed

    def test_exact_output_path_is_used(self, adversarial_index, tmp_path):
        """numpy must not silently append an .npz suffix (v2 path)."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        assert path.exists()
        assert not (tmp_path / "index.bin.npz").exists()


class TestRoundTrip:
    def test_adversarial_round_trip_identical_queries(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "adversarial.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, SkewAdaptiveIndex)
        assert loaded.num_indexed == adversarial_index.num_indexed
        assert loaded.total_stored_filters == adversarial_index.total_stored_filters
        for query_id in range(25):
            original_result, original_stats = adversarial_index.query(skewed_dataset[query_id])
            loaded_result, loaded_stats = loaded.query(skewed_dataset[query_id])
            assert original_result == loaded_result
            assert original_stats.to_dict() == loaded_stats.to_dict()

    def test_correlated_round_trip_identical_queries(
        self, correlated_index, skewed_distribution, skewed_dataset, tmp_path
    ):
        path = tmp_path / "correlated.bin"
        save_index(correlated_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CorrelatedIndex)
        rng = np.random.default_rng(3)
        for target in range(15):
            query = skewed_distribution.sample_correlated(skewed_dataset[target], 0.7, rng)
            assert correlated_index.query(query)[0] == loaded.query(query)[0]

    def test_chosen_path_round_trip_identical_queries(
        self, chosen_path_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "chosen_path.bin"
        save_index(chosen_path_index, path)
        loaded = load_index(path)
        assert isinstance(loaded, ChosenPathIndex)
        assert loaded.rho == chosen_path_index.rho
        for query_id in range(20):
            assert (
                chosen_path_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )

    def test_batch_queries_identical_after_load(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        queries = skewed_dataset[:40]
        original_results, original_stats = adversarial_index.query_batch(queries)
        loaded_results, loaded_stats = loaded.query_batch(queries)
        assert original_results == loaded_results
        assert [s.to_dict() for s in original_stats.per_query] == [
            s.to_dict() for s in loaded_stats.per_query
        ]

    def test_round_trip_preserves_vectors(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        for vector_id in range(adversarial_index.num_indexed):
            assert loaded.get_vector(vector_id) == adversarial_index.get_vector(vector_id)

    def test_round_trip_preserves_full_build_stats(self, adversarial_index, tmp_path):
        """Every BuildStats field survives, including the extended ones
        (build_seconds, generation_batches) that format v1 silently dropped."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        original = adversarial_index.build_stats.to_dict()
        restored = loaded.build_stats.to_dict()
        assert restored == original
        assert restored["build_seconds"] > 0.0
        assert restored["generation_batches"] > 0

    def test_round_trip_preserves_removals(self, adversarial_index, skewed_dataset, tmp_path):
        adversarial_index.remove(2)
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        result, _stats = loaded.query(skewed_dataset[2], mode="best")
        assert result != 2

    def test_round_trip_after_insert(self, adversarial_index, skewed_dataset, tmp_path):
        """Postings added after the initial build (pending overlay) are saved."""
        inserted_id = adversarial_index.insert(skewed_dataset[90])
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        assert loaded.get_vector(inserted_id) == skewed_dataset[90]
        assert (
            loaded.query(skewed_dataset[90], mode="best")[0]
            == adversarial_index.query(skewed_dataset[90], mode="best")[0]
        )

    def test_loaded_index_supports_insert(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path)
        loaded = load_index(path)
        new_id = loaded.insert(skewed_dataset[90])
        assert loaded.get_vector(new_id) == skewed_dataset[90]

    def test_empty_dataset_round_trip(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3)
        )
        index.build([])
        path = tmp_path / "empty.bin"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_indexed == 0
        assert loaded.query({1, 2, 3})[0] is None


class TestLoadValidation:
    def test_wrong_version_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_unknown_kind_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["config"]["kind"] = "mystery"
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="kind"):
            load_index(path)

    def test_unknown_build_stats_field_rejected(self, adversarial_index, tmp_path):
        """A file claiming BuildStats fields this version does not know must
        fail loudly instead of silently dropping them."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["build_stats"]["from_the_future"] = 42
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="from_the_future"):
            load_index(path)

    def test_truncated_file_rejected(self, adversarial_index, tmp_path):
        """Truncation behind a valid zip magic must still surface as the
        documented ValueError (catchable by the CLI), not BadZipFile."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="not a valid index file"):
            load_index(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01\x02definitely not an index\xff" * 10)
        with pytest.raises(ValueError, match="not a recognised index file"):
            load_index(path)

    def test_out_of_range_posting_ids_rejected(self, adversarial_index, tmp_path):
        """Corrupted posting ids referencing missing vectors fail the
        validate_postings integrity check."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        ids = arrays["rep0000_posting_ids"].astype(np.int64)
        ids[0] = 10_000_000
        arrays["rep0000_posting_ids"] = ids
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_index(path)

    def test_missing_repetition_arrays_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        del arrays["rep0001_posting_ids"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="repetition 1"):
            load_index(path)

    def test_missing_top_level_arrays_rejected(self, adversarial_index, tmp_path):
        """Missing top-level arrays must raise ValueError (catchable by the
        CLI), not leak a KeyError."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        del arrays["vector_items"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="vector_items"):
            load_index(path)

    def test_missing_meta_keys_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        del meta["num_vectors_hint"]
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="num_vectors_hint"):
            load_index(path)

    def test_missing_config_field_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        del meta["config"]["b1"]
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="missing field 'b1'"):
            load_index(path)

    def test_negative_vector_lengths_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        lengths = arrays["vector_lengths"].astype(np.int64)
        lengths[0] += lengths[1]
        lengths[1] = -lengths[1]
        arrays["vector_lengths"] = lengths
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_index(path)

    def test_non_object_meta_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with np.load(path, allow_pickle=False) as container:
            arrays = {name: container[name] for name in container.files}
        arrays["meta"] = np.frombuffer(b"[1, 2, 3]", dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ValueError, match="metadata"):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "does_not_exist.bin")


class TestLegacyV1:
    def test_v1_file_still_loads(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        loaded = load_index(path)
        for query_id in range(20):
            assert (
                adversarial_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )

    def test_v1_preserves_removals(self, adversarial_index, skewed_dataset, tmp_path):
        adversarial_index.remove(4)
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        loaded = load_index(path)
        assert loaded.query(skewed_dataset[4], mode="best")[0] != 4

    def test_v1_unknown_version_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "legacy.json"
        _save_legacy_v1(adversarial_index, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 7
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_convert_v1_to_v2(self, adversarial_index, skewed_dataset, tmp_path):
        source = tmp_path / "legacy.json"
        destination = tmp_path / "converted.bin"
        adversarial_index.remove(6)
        _save_legacy_v1(adversarial_index, source)
        convert_index_file(source, destination, config=V2)
        assert zipfile.is_zipfile(destination)
        loaded = load_index(destination)
        for query_id in range(20):
            assert (
                adversarial_index.query(skewed_dataset[query_id])[0]
                == loaded.query(skewed_dataset[query_id])[0]
            )
        assert loaded.query(skewed_dataset[6], mode="best")[0] != 6

    def test_convert_is_smaller(self, adversarial_index, tmp_path):
        source = tmp_path / "legacy.json"
        destination = tmp_path / "converted.bin"
        _save_legacy_v1(adversarial_index, source)
        convert_index_file(source, destination)
        assert destination.stat().st_size < source.stat().st_size

    def test_legacy_writer_version_constant(self):
        assert LEGACY_JSON_VERSION == 1
        assert V2_FORMAT_VERSION == 2
        assert FORMAT_VERSION == 3


class TestV3Format:
    """The sharded, mmap-native directory layout (format v3)."""

    def test_default_save_is_v3_directory(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        assert path.is_dir()
        assert (path / "manifest.json").is_file()
        assert (path / "store.bin").is_file()
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["num_shards"] == 8
        assert len(manifest["fences"]) == 7
        assert len(manifest["shard_files"]) == 8
        for name in manifest["shard_files"]:
            assert (path / name).is_file()

    def test_shard_count_is_configurable(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path, config=PersistenceConfig(shards=3))
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["num_shards"] == 3
        loaded = load_index(path)
        assert loaded.num_indexed == adversarial_index.num_indexed

    def test_v3_round_trip_identical_queries_and_stats(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        for mode in ("ram", "mmap"):
            loaded = load_index(path, mode=mode)
            for query_id in range(25):
                original, original_stats = adversarial_index.query(skewed_dataset[query_id])
                result, stats = loaded.query(skewed_dataset[query_id])
                assert result == original
                original_dict = original_stats.to_dict()
                result_dict = stats.to_dict()
                original_dict.pop("shards_probed")
                result_dict.pop("shards_probed")
                assert result_dict == original_dict

    def test_shards_partition_all_postings(self, adversarial_index, tmp_path):
        """Every slot and posting lands in exactly one shard: the manifest's
        per-shard counts sum to the store totals."""
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        manifest = json.loads((path / "manifest.json").read_text())
        engine = adversarial_index._engine
        for repetition, inverted in enumerate(engine.filter_indexes):
            slots = sum(
                entry["repetitions"][repetition]["num_slots"]
                for entry in manifest["shards"]
            )
            postings = sum(
                entry["repetitions"][repetition]["num_postings"]
                for entry in manifest["shards"]
            )
            assert slots == inverted.num_filters
            assert postings == inverted.total_entries

    def test_v1_to_v3_conversion_answers_identically(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        source = tmp_path / "legacy.json"
        adversarial_index.remove(6)
        _save_legacy_v1(adversarial_index, source)
        destination = tmp_path / "converted.v3"
        convert_index_file(source, destination)
        assert destination.is_dir()
        for mode in ("ram", "mmap"):
            loaded = load_index(destination, mode=mode)
            for query_id in range(20):
                assert (
                    loaded.query(skewed_dataset[query_id])[0]
                    == adversarial_index.query(skewed_dataset[query_id])[0]
                )
            assert loaded.query(skewed_dataset[6], mode="best")[0] != 6

    def test_v2_to_v3_and_back_round_trip(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        """v2 → v3 upgrade and v3 → v2 downgrade both answer bit-identically
        (single and batched), closing the ROADMAP downgrade-path item."""
        adversarial_index.insert(skewed_dataset[90])
        adversarial_index.remove(4)
        v2_first = tmp_path / "first.bin"
        save_index(adversarial_index, v2_first, config=V2)
        upgraded = tmp_path / "upgraded.v3"
        convert_index_file(v2_first, upgraded)
        downgraded = tmp_path / "downgraded.bin"
        convert_index_file(upgraded, downgraded, config=V2)
        assert zipfile.is_zipfile(downgraded)

        queries = skewed_dataset[:30]
        expected, expected_stats = adversarial_index.query_batch(queries)
        for loaded in (
            load_index(upgraded),
            load_index(upgraded, mode="mmap"),
            load_index(downgraded),
        ):
            results, stats = loaded.query_batch(queries)
            assert results == expected
            for stats_a, stats_b in zip(expected_stats.per_query, stats.per_query):
                dict_a, dict_b = stats_a.to_dict(), stats_b.to_dict()
                dict_a.pop("shards_probed")
                dict_b.pop("shards_probed")
                assert dict_a == dict_b

    def test_empty_dataset_round_trip_v3(self, skewed_distribution, tmp_path):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3)
        )
        index.build([])
        path = tmp_path / "empty.v3"
        save_index(index, path)
        for mode in ("ram", "mmap"):
            loaded = load_index(path, mode=mode)
            assert loaded.num_indexed == 0
            assert loaded.query({1, 2, 3})[0] is None

    def test_refuses_to_clobber_non_index_directory(self, adversarial_index, tmp_path):
        path = tmp_path / "precious"
        path.mkdir()
        (path / "keep.txt").write_text("do not delete")
        with pytest.raises(ValueError, match="does not look like an index"):
            save_index(adversarial_index, path)
        assert (path / "keep.txt").read_text() == "do not delete"

    def test_resave_over_existing_v3_directory(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path, config=PersistenceConfig(shards=8))
        save_index(adversarial_index, path, config=PersistenceConfig(shards=2))
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["num_shards"] == 2
        # Stale shard files from the 8-shard save are gone.
        assert not (path / "shard_0005.bin").exists()
        assert load_index(path).num_indexed == adversarial_index.num_indexed

    def test_describe_reports_shard_layout(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        description = describe_index_file(path)
        assert description["format_version"] == FORMAT_VERSION
        assert description["kind"] == "skew_adaptive"
        assert description["num_shards"] == 8
        assert len(description["shards"]) == 8
        assert description["disk_bytes"] > 0
        assert description["resident_bytes"] > 0


class TestMmapMode:
    """Read-only semantics and laziness of ``mode="mmap"``."""

    def test_mmap_requires_v3(self, adversarial_index, tmp_path):
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        with pytest.raises(ValueError, match="mmap.*requires a format v3"):
            load_index(path, mode="mmap")

    def test_unknown_mode_rejected(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        with pytest.raises(ValueError, match="mode must be"):
            load_index(path, mode="lazy")

    def test_mmap_insert_raises_clear_error(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        loaded = load_index(path, mode="mmap")
        before = loaded.num_indexed
        with pytest.raises(TypeError, match="read-only.*mode='ram'"):
            loaded.insert(skewed_dataset[90])
        # The failed insert must not leave partial state behind.
        assert loaded.num_indexed == before
        assert loaded.query(skewed_dataset[0])[0] == adversarial_index.query(
            skewed_dataset[0]
        )[0]

    def test_mmap_remove_overlays_correctly(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        loaded = load_index(path, mode="mmap")
        loaded.remove(2)
        assert loaded.query(skewed_dataset[2], mode="best")[0] != 2
        candidates, _stats = loaded.query_candidates(skewed_dataset[2])
        assert 2 not in candidates
        # The removal is an overlay: the files on disk are untouched and a
        # fresh load still sees vector 2.
        fresh = load_index(path, mode="mmap")
        assert fresh.query(skewed_dataset[2], mode="best")[0] == adversarial_index.query(
            skewed_dataset[2], mode="best"
        )[0]

    def test_mmap_loaded_index_can_be_resaved(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        """Re-serialising an mmap-loaded index materialises the shards and
        produces a file set that answers identically (the downgrade path
        runs through this)."""
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        loaded = load_index(path, mode="mmap")
        resaved = tmp_path / "resaved.v3"
        save_index(loaded, resaved)
        again = load_index(resaved)
        for query_id in range(15):
            assert (
                again.query(skewed_dataset[query_id])[0]
                == adversarial_index.query(skewed_dataset[query_id])[0]
            )

    def test_v3_save_over_v2_file_upgrades_in_place(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        """Saving v3 over a path currently holding a v2 file replaces the
        file with the directory layout, staging the new layout fully before
        the old file is removed."""
        path = tmp_path / "index.bin"
        save_index(adversarial_index, path, config=V2)
        assert path.is_file()
        save_index(adversarial_index, path)
        assert path.is_dir()
        assert not (tmp_path / "index.bin.v3-staging").exists()
        loaded = load_index(path, mode="mmap")
        for query_id in range(10):
            assert (
                loaded.query(skewed_dataset[query_id])[0]
                == adversarial_index.query(skewed_dataset[query_id])[0]
            )

    def test_contains_handles_empty_shards(self, adversarial_index, tmp_path):
        """Membership probes that route to an empty key-range shard return
        False instead of tripping over the empty offsets array."""
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path, config=PersistenceConfig(shards=64))
        loaded = load_index(path, mode="mmap")
        engine = loaded._engine
        store = engine.filter_indexes[0]
        hits = 0
        for probe in [(0,), (1, 2), (3, 4, 5), (250, 251), (7,)]:
            hits += probe in store  # must not raise, whatever shard it routes to
        assert hits >= 0

    def test_mmap_index_can_resave_over_its_own_directory(
        self, adversarial_index, skewed_dataset, tmp_path
    ):
        """Resaving an mmap-loaded index onto the very directory backing its
        mapped shards must not destroy the index: the writer materialises
        every array before touching any existing file (regression test for
        an unlink-before-read data-loss bug)."""
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path, config=PersistenceConfig(shards=8))
        loaded = load_index(path, mode="mmap")
        save_index(loaded, path, config=PersistenceConfig(shards=3))
        assert not list(path.glob("*.tmp"))
        again = load_index(path)
        for query_id in range(15):
            assert (
                again.query(skewed_dataset[query_id])[0]
                == adversarial_index.query(skewed_dataset[query_id])[0]
            )

    def test_shards_probed_counters(self, adversarial_index, skewed_dataset, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        ram = load_index(path)
        mapped = load_index(path, mode="mmap")
        _result, ram_stats = ram.query_candidates(skewed_dataset[0])
        _result, mmap_stats = mapped.query_candidates(skewed_dataset[0])
        # RAM mode: one probe table per repetition that generated filters.
        assert 0 < ram_stats.shards_probed <= ram_stats.repetitions_used
        # mmap mode: a multi-filter probe set fans out across shards.
        assert mmap_stats.shards_probed >= ram_stats.shards_probed
        _results, batch_stats = mapped.query_batch(skewed_dataset[:10], batch_size=5)
        assert batch_stats.shards_probed > 0


class TestV3Corruption:
    """Manifest corruption and truncated shard files fail actionably."""

    @pytest.fixture()
    def v3_path(self, adversarial_index, tmp_path):
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path)
        return path

    def _manifest(self, path):
        return json.loads((path / "manifest.json").read_text())

    def _write_manifest(self, path, manifest):
        (path / "manifest.json").write_text(json.dumps(manifest))

    def test_missing_manifest_rejected(self, v3_path):
        (v3_path / "manifest.json").unlink()
        with pytest.raises(ValueError, match="manifest.json"):
            load_index(v3_path)

    def test_invalid_manifest_json_rejected(self, v3_path):
        (v3_path / "manifest.json").write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON.*corrupted"):
            load_index(v3_path)

    def test_wrong_version_rejected(self, v3_path):
        manifest = self._manifest(v3_path)
        manifest["format_version"] = 99
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="format version 99"):
            load_index(v3_path)

    def test_missing_manifest_fields_rejected(self, v3_path):
        manifest = self._manifest(v3_path)
        del manifest["fences"]
        del manifest["num_vectors_hint"]
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="fences.*num_vectors_hint|num_vectors_hint.*fences"):
            load_index(v3_path)

    def test_non_numeric_fences_rejected(self, v3_path):
        """Type-corrupt manifests surface as the documented ValueError (the
        CLI catches it), never a raw TypeError."""
        manifest = self._manifest(v3_path)
        manifest["fences"] = [None] + manifest["fences"][1:]
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="non-numeric.*corrupted"):
            load_index(v3_path)
        manifest["fences"] = manifest["fences"][1:]
        manifest["num_shards"] = {"oops": 1}
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="non-numeric.*corrupted"):
            load_index(v3_path)

    def test_inconsistent_fences_rejected(self, v3_path):
        manifest = self._manifest(v3_path)
        manifest["fences"] = list(reversed(manifest["fences"]))
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="fences are inconsistent"):
            load_index(v3_path)

    def test_missing_shard_file_rejected(self, v3_path):
        (v3_path / "shard_0003.bin").unlink()
        with pytest.raises(ValueError, match="missing shard_0003.bin.*incomplete"):
            load_index(v3_path)

    def test_truncated_shard_rejected_in_ram_mode(self, v3_path):
        shard = v3_path / "shard_0001.bin"
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated|corrupted"):
            load_index(v3_path)

    def test_truncated_shard_rejected_in_mmap_mode(self, v3_path, skewed_dataset):
        """mmap mode opens shards lazily, so truncation surfaces on first
        touch of the damaged shard — still as an actionable ValueError."""
        for shard in range(8):
            name = v3_path / f"shard_{shard:04d}.bin"
            data = name.read_bytes()
            name.write_bytes(data[: max(len(data) // 3, 64)])
        loaded = load_index(v3_path, mode="mmap")
        with pytest.raises(ValueError, match="truncated|corrupted"):
            for query_id in range(10):
                loaded.query(skewed_dataset[query_id])

    def test_manifest_count_mismatch_rejected(self, v3_path):
        manifest = self._manifest(v3_path)
        manifest["shards"][0]["repetitions"][0]["num_slots"] += 1
        self._write_manifest(v3_path, manifest)
        with pytest.raises(ValueError, match="disagrees with the manifest|manifest promises"):
            load_index(v3_path)

    def test_out_of_range_posting_ids_rejected_on_ram_load(
        self, adversarial_index, tmp_path
    ):
        """validate_postings cross-checks the concatenated shards on a RAM
        load, like it always did for v2 files."""
        path = tmp_path / "index.v3"
        save_index(adversarial_index, path, config=PersistenceConfig(shards=1))
        manifest = json.loads((path / "manifest.json").read_text())
        # Rewrite the single shard with a poisoned posting id via the
        # private container API (simulating silent bit rot that still
        # matches the manifest counts).
        from repro.core.serialization import _read_raw_container, _write_raw_container

        shard_path = path / manifest["shard_files"][0]
        arrays = _read_raw_container(shard_path, "ram")
        ids = arrays["rep0000_posting_ids"].astype(np.int64)
        ids[0] = 10_000_000
        arrays["rep0000_posting_ids"] = ids
        _write_raw_container(shard_path, arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_index(path)

    def test_store_file_truncation_rejected(self, v3_path):
        store = v3_path / "store.bin"
        data = store.read_bytes()
        store.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_index(v3_path)

    def test_describe_rejects_truncated_files_with_value_error(
        self, v3_path, adversarial_index, tmp_path
    ):
        """`describe_index_file` honours the same ValueError contract as
        loading for every format (the CLI's `inspect` relies on it)."""
        (v3_path / "store.bin").write_bytes(b"RPV3tooshort"[:8])
        with pytest.raises(ValueError, match="truncated|corrupt"):
            describe_index_file(v3_path)

        v2_path = tmp_path / "index.bin"
        save_index(adversarial_index, v2_path, config=V2)
        data = v2_path.read_bytes()
        v2_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="not a valid index file"):
            describe_index_file(v2_path)

"""Tests for the correlated-query skew-adaptive index (Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.thresholds import CorrelatedThreshold
from repro.similarity.measures import braun_blanquet

ALPHA = 0.7


@pytest.fixture(scope="module")
def built_index(skewed_distribution, skewed_dataset):
    index = CorrelatedIndex(
        skewed_distribution,
        config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=6, seed=5),
    )
    index.build(skewed_dataset)
    return index


class TestConstruction:
    def test_accepts_raw_probabilities(self):
        index = CorrelatedIndex(np.full(30, 0.1), alpha=0.5)
        assert index.alpha == 0.5
        assert index.acceptance_threshold == pytest.approx(0.5 / 1.3)

    def test_config_overrides(self):
        config = CorrelatedIndexConfig(alpha=0.9)
        index = CorrelatedIndex(np.full(5, 0.1), alpha=0.2, config=config)
        assert index.alpha == 0.9

    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            CorrelatedIndex(np.full(5, 0.1)).query({1})

    def test_threshold_policy_exposed(self, built_index):
        policy = built_index.threshold_policy()
        assert isinstance(policy, CorrelatedThreshold)
        assert policy.alpha == ALPHA

    def test_repr(self, built_index):
        assert "CorrelatedIndex" in repr(built_index)


class TestBuild:
    def test_build_stats(self, built_index, skewed_dataset):
        stats = built_index.build_stats
        assert stats.num_vectors == len(skewed_dataset)
        assert stats.total_filters > 0
        assert built_index.num_indexed == len(skewed_dataset)
        assert built_index.total_stored_filters == stats.total_filters


class TestCorrelatedQueries:
    def test_planted_queries_recovered(self, built_index, skewed_distribution, skewed_dataset):
        """The headline guarantee of Theorem 1: an alpha-correlated query
        returns its planted partner with high probability."""
        rng = np.random.default_rng(77)
        hits = 0
        trials = 30
        for trial in range(trials):
            target = trial
            query = skewed_distribution.sample_correlated(skewed_dataset[target], ALPHA, rng)
            result, _stats = built_index.query(query)
            if result == target:
                hits += 1
            elif result is not None:
                # Returning another vector is acceptable only if it genuinely
                # meets the acceptance threshold.
                similarity = braun_blanquet(built_index.get_vector(result), query)
                assert similarity >= built_index.acceptance_threshold
        assert hits >= int(0.8 * trials)

    def test_uncorrelated_queries_mostly_rejected(
        self, built_index, skewed_distribution
    ):
        """Fresh independent queries should usually not be matched to anything
        (Lemma 10: uncorrelated similarity concentrates below alpha/1.5)."""
        rng = np.random.default_rng(88)
        false_positives = 0
        trials = 30
        for _ in range(trials):
            query = skewed_distribution.sample(rng)
            result, _stats = built_index.query(query)
            if result is not None:
                similarity = braun_blanquet(built_index.get_vector(result), query)
                # Whatever is returned must meet the acceptance threshold,
                # and such accidental matches should be rare.
                assert similarity >= built_index.acceptance_threshold
                false_positives += 1
        assert false_positives <= trials // 3

    def test_query_work_reported(self, built_index, skewed_distribution, skewed_dataset):
        rng = np.random.default_rng(5)
        query = skewed_distribution.sample_correlated(skewed_dataset[0], ALPHA, rng)
        _result, stats = built_index.query(query)
        assert stats.filters_generated > 0
        assert stats.unique_candidates <= stats.candidates_examined

    def test_best_mode(self, built_index, skewed_distribution, skewed_dataset):
        rng = np.random.default_rng(6)
        query = skewed_distribution.sample_correlated(skewed_dataset[2], ALPHA, rng)
        result, _stats = built_index.query(query, mode="best")
        if result is not None:
            assert braun_blanquet(built_index.get_vector(result), query) >= (
                built_index.acceptance_threshold
            )

    def test_query_candidates(self, built_index, skewed_dataset):
        candidates, stats = built_index.query_candidates(skewed_dataset[1])
        assert stats.unique_candidates == len(candidates)


class TestSkewAdaptivity:
    def test_skew_reduces_work_compared_to_uniform(
        self, skewed_distribution, uniform_distribution
    ):
        """On a skewed distribution the correlated index does less work per
        query (relative to dataset size) than on an unskewed one with the
        same expected set size — the core empirical claim of the paper."""
        rng = np.random.default_rng(1)
        results = {}
        for name, distribution in (
            ("skewed", skewed_distribution),
            ("uniform", uniform_distribution),
        ):
            dataset = distribution.sample_many(120, rng)
            dataset = [v if v else frozenset({0}) for v in dataset]
            index = CorrelatedIndex(
                distribution,
                config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=4, seed=9),
            )
            index.build(dataset)
            work = []
            for target in range(25):
                query = distribution.sample_correlated(dataset[target], ALPHA, rng)
                _result, stats = index.query(query)
                work.append(stats.candidates_examined)
            results[name] = float(np.mean(work))
        # The skewed instance should not require more candidate examinations
        # than the uniform one (in practice it requires notably fewer).
        assert results["skewed"] <= results["uniform"] * 1.5

"""Tests for build/query statistics accounting."""

from __future__ import annotations

from repro.core.stats import AggregatedQueryStats, BuildStats, QueryStats


class TestBuildStats:
    def test_filters_per_vector(self):
        stats = BuildStats(num_vectors=10, total_filters=50)
        assert stats.filters_per_vector == 5.0

    def test_filters_per_vector_empty(self):
        assert BuildStats().filters_per_vector == 0.0

    def test_merge_sums_filters(self):
        merged = BuildStats(num_vectors=10, total_filters=5, repetitions=1).merge(
            BuildStats(num_vectors=10, total_filters=7, truncated_vectors=2, repetitions=1)
        )
        assert merged.total_filters == 12
        assert merged.truncated_vectors == 2
        assert merged.repetitions == 2
        assert merged.num_vectors == 10


class TestQueryStats:
    def test_total_work(self):
        stats = QueryStats(filters_generated=3, candidates_examined=7)
        assert stats.total_work == 10

    def test_add_accumulates(self):
        first = QueryStats(filters_generated=1, candidates_examined=2, found=False)
        second = QueryStats(
            filters_generated=3,
            candidates_examined=4,
            unique_candidates=2,
            similarity_evaluations=2,
            found=True,
            repetitions_used=1,
        )
        first.add(second)
        assert first.filters_generated == 4
        assert first.candidates_examined == 6
        assert first.unique_candidates == 2
        assert first.found is True
        assert first.repetitions_used == 1


class TestAggregatedQueryStats:
    def test_record_and_means(self):
        aggregate = AggregatedQueryStats()
        aggregate.record(QueryStats(filters_generated=2, candidates_examined=10, found=True))
        aggregate.record(QueryStats(filters_generated=4, candidates_examined=20, found=False))
        assert aggregate.num_queries == 2
        assert aggregate.mean_candidates == 15.0
        assert aggregate.mean_filters == 3.0
        assert aggregate.mean_work == 18.0
        assert aggregate.success_rate == 0.5

    def test_empty_aggregate(self):
        aggregate = AggregatedQueryStats()
        assert aggregate.mean_candidates == 0.0
        assert aggregate.mean_filters == 0.0
        assert aggregate.mean_work == 0.0
        assert aggregate.success_rate == 0.0

    def test_per_query_retained(self):
        aggregate = AggregatedQueryStats()
        stats = QueryStats(filters_generated=1)
        aggregate.record(stats)
        assert aggregate.per_query == [stats]

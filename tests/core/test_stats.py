"""Tests for build/query statistics accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import new_counters
from repro.core.stats import AggregatedQueryStats, BuildStats, KernelStats, QueryStats


class TestKernelStats:
    def test_add_accumulates(self):
        first = KernelStats(paths_extended=1, keys_folded=2, merge_rows=3)
        first.add(KernelStats(paths_extended=10, chain_probes=4, dedupe_hits=5))
        assert first == KernelStats(
            paths_extended=11, keys_folded=2, chain_probes=4, merge_rows=3, dedupe_hits=5
        )

    def test_add_counters_folds_vector(self):
        counters = new_counters()
        counters += np.arange(1, 6, dtype=np.int64)
        stats = KernelStats(paths_extended=100)
        stats.add_counters(counters)
        assert stats == KernelStats(
            paths_extended=101, keys_folded=2, chain_probes=3, merge_rows=4, dedupe_hits=5
        )

    def test_dict_round_trip(self):
        stats = KernelStats(
            paths_extended=1, keys_folded=2, chain_probes=3, merge_rows=4, dedupe_hits=5
        )
        assert KernelStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_ignores_unknown_keys_unless_strict(self):
        payload = {"paths_extended": 7, "mystery": 1}
        assert KernelStats.from_dict(payload).paths_extended == 7
        with pytest.raises(ValueError):
            KernelStats.from_dict(payload, strict=True)

    def test_query_stats_round_trip_carries_kernel(self):
        stats = QueryStats(
            filters_generated=3, kernel=KernelStats(paths_extended=9, merge_rows=2)
        )
        restored = QueryStats.from_dict(stats.to_dict())
        assert restored.kernel == stats.kernel

    def test_build_stats_merge_sums_kernel(self):
        merged = BuildStats(kernel=KernelStats(paths_extended=1, chain_probes=2)).merge(
            BuildStats(kernel=KernelStats(paths_extended=10, dedupe_hits=3))
        )
        assert merged.kernel == KernelStats(
            paths_extended=11, chain_probes=2, dedupe_hits=3
        )


class TestBuildStats:
    def test_filters_per_vector(self):
        stats = BuildStats(num_vectors=10, total_filters=50)
        assert stats.filters_per_vector == 5.0

    def test_filters_per_vector_empty(self):
        assert BuildStats().filters_per_vector == 0.0

    def test_merge_sums_filters(self):
        merged = BuildStats(num_vectors=10, total_filters=5, repetitions=1).merge(
            BuildStats(num_vectors=10, total_filters=7, truncated_vectors=2, repetitions=1)
        )
        assert merged.total_filters == 12
        assert merged.truncated_vectors == 2
        assert merged.repetitions == 2
        assert merged.num_vectors == 10


class TestQueryStats:
    def test_total_work(self):
        stats = QueryStats(filters_generated=3, candidates_examined=7)
        assert stats.total_work == 10

    def test_add_accumulates(self):
        first = QueryStats(filters_generated=1, candidates_examined=2, found=False)
        second = QueryStats(
            filters_generated=3,
            candidates_examined=4,
            unique_candidates=2,
            similarity_evaluations=2,
            found=True,
            repetitions_used=1,
        )
        first.add(second)
        assert first.filters_generated == 4
        assert first.candidates_examined == 6
        assert first.unique_candidates == 2
        assert first.found is True
        assert first.repetitions_used == 1


class TestAggregatedQueryStats:
    def test_record_and_means(self):
        aggregate = AggregatedQueryStats()
        aggregate.record(QueryStats(filters_generated=2, candidates_examined=10, found=True))
        aggregate.record(QueryStats(filters_generated=4, candidates_examined=20, found=False))
        assert aggregate.num_queries == 2
        assert aggregate.mean_candidates == 15.0
        assert aggregate.mean_filters == 3.0
        assert aggregate.mean_work == 18.0
        assert aggregate.success_rate == 0.5

    def test_empty_aggregate(self):
        aggregate = AggregatedQueryStats()
        assert aggregate.mean_candidates == 0.0
        assert aggregate.mean_filters == 0.0
        assert aggregate.mean_work == 0.0
        assert aggregate.success_rate == 0.0

    def test_per_query_retained(self):
        aggregate = AggregatedQueryStats()
        stats = QueryStats(filters_generated=1)
        aggregate.record(stats)
        assert aggregate.per_query == [stats]

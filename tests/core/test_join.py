"""Tests for similarity join built on repeated search queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceIndex
from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.join import JoinResult, similarity_join, similarity_self_join
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.similarity.measures import braun_blanquet
from repro.similarity.predicates import SimilarityPredicate


@pytest.fixture(scope="module")
def join_data(skewed_distribution):
    """A dataset with planted near-duplicates plus probe sets overlapping them."""
    rng = np.random.default_rng(7)
    base = skewed_distribution.sample_many(60, rng)
    base = [v if v else frozenset({0}) for v in base]
    probes = []
    for index in range(20):
        stored = sorted(base[index])
        keep = max(1, int(0.9 * len(stored)))
        probes.append(frozenset(rng.choice(stored, size=keep, replace=False).tolist()))
    return base, probes


def build_index(distribution, dataset, b1=0.5, seed=11):
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=b1, repetitions=6, seed=seed)
    )
    index.build(dataset)
    return index


class TestSimilarityJoin:
    def test_pairs_meet_predicate(self, skewed_distribution, join_data):
        dataset, probes = join_data
        index = build_index(skewed_distribution, dataset)
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        result = similarity_join(index, probes, predicate)
        for probe_index, candidate_id, similarity in result.pairs:
            recomputed = braun_blanquet(dataset[candidate_id], probes[probe_index])
            assert recomputed == pytest.approx(similarity)
            assert similarity >= 0.5

    def test_recall_against_brute_force(self, skewed_distribution, join_data):
        dataset, probes = join_data
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        index = build_index(skewed_distribution, dataset)
        approximate = similarity_join(index, probes, predicate).pair_set()

        brute = BruteForceIndex(predicate)
        brute.build(dataset)
        exact = similarity_join(brute, probes, predicate).pair_set()

        assert approximate.issubset(exact)
        if exact:
            recall = len(approximate & exact) / len(exact)
            assert recall >= 0.8

    def test_counts_populated(self, skewed_distribution, join_data):
        dataset, probes = join_data
        index = build_index(skewed_distribution, dataset)
        result = similarity_join(index, probes, SimilarityPredicate("braun_blanquet", 0.5))
        assert result.num_probes == len(probes)
        assert result.similarity_evaluations <= result.candidates_examined + len(probes)

    def test_empty_probe_skipped(self, skewed_distribution, join_data):
        dataset, _probes = join_data
        index = build_index(skewed_distribution, dataset)
        result = similarity_join(index, [frozenset()], SimilarityPredicate("braun_blanquet", 0.5))
        assert result.num_pairs == 0
        assert result.num_probes == 1


class _NoBatchIndex:
    """Wraps an index exposing only the single-probe candidate surface, to
    force :func:`similarity_join` onto its per-probe fallback branch."""

    def __init__(self, inner):
        self._inner = inner

    def query_candidates(self, query):
        return self._inner.query_candidates(query)

    def get_vector(self, vector_id):
        return self._inner.get_vector(vector_id)


class TestJoinFallback:
    def test_fallback_matches_batched_path(self, skewed_distribution, join_data):
        """The per-probe fallback (indexes without query_candidates_batch)
        must report exactly the pairs the batched consumer reports."""
        dataset, probes = join_data
        index = build_index(skewed_distribution, dataset)
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        batched = similarity_join(index, probes, predicate)
        fallback = similarity_join(_NoBatchIndex(index), probes, predicate)
        assert fallback.pair_set() == batched.pair_set()
        assert fallback.num_probes == batched.num_probes
        assert fallback.candidates_examined == batched.candidates_examined

    def test_fallback_scores_match(self, skewed_distribution, join_data):
        dataset, probes = join_data
        index = build_index(skewed_distribution, dataset)
        predicate = SimilarityPredicate("braun_blanquet", 0.5)
        batched = {
            (r, s): sim for r, s, sim in similarity_join(index, probes, predicate).pairs
        }
        fallback = {
            (r, s): sim
            for r, s, sim in similarity_join(_NoBatchIndex(index), probes, predicate).pairs
        }
        assert fallback == batched

    def test_fallback_skips_empty_probes(self, skewed_distribution, join_data):
        dataset, _probes = join_data
        index = build_index(skewed_distribution, dataset)
        result = similarity_join(
            _NoBatchIndex(index), [frozenset()], SimilarityPredicate("braun_blanquet", 0.5)
        )
        assert result.num_pairs == 0
        assert result.num_probes == 1

    def test_fallback_respects_tombstones(self, skewed_distribution, join_data):
        dataset, probes = join_data
        index = build_index(skewed_distribution, dataset)
        removed = {0, 1, 2}
        for vector_id in removed:
            index.remove(vector_id)
        result = similarity_join(
            _NoBatchIndex(index), probes, SimilarityPredicate("braun_blanquet", 0.5)
        )
        assert removed.isdisjoint(s for _r, s, _sim in result.pairs)


class TestSelfJoin:
    def test_pairs_are_canonical_and_unique(self, skewed_distribution, join_data):
        dataset, _probes = join_data
        index = build_index(skewed_distribution, dataset, b1=0.4)
        result = similarity_self_join(index, dataset, SimilarityPredicate("braun_blanquet", 0.4))
        seen = set()
        for low, high, _similarity in result.pairs:
            assert low < high
            assert (low, high) not in seen
            seen.add((low, high))

    def test_self_pairs_excluded_by_default(self, skewed_distribution, join_data):
        dataset, _probes = join_data
        index = build_index(skewed_distribution, dataset, b1=0.4)
        result = similarity_self_join(index, dataset, SimilarityPredicate("braun_blanquet", 0.4))
        assert all(low != high for low, high, _ in result.pairs)

    def test_self_pairs_included_when_requested(self, skewed_distribution, join_data):
        dataset, _probes = join_data
        index = build_index(skewed_distribution, dataset, b1=0.4)
        result = similarity_self_join(
            index, dataset, SimilarityPredicate("braun_blanquet", 0.4), include_self_pairs=True
        )
        assert any(low == high for low, high, _ in result.pairs)

    def test_finds_planted_duplicates(self, skewed_distribution):
        """Exact duplicates must be reported by the self-join."""
        rng = np.random.default_rng(3)
        base = skewed_distribution.sample_many(40, rng)
        base = [v if v else frozenset({0}) for v in base]
        dataset = base + [base[0], base[1]]  # two exact duplicates appended
        index = build_index(skewed_distribution, dataset, b1=0.8)
        result = similarity_self_join(index, dataset, SimilarityPredicate("braun_blanquet", 0.8))
        reported = result.pair_set()
        assert (0, len(base)) in reported
        assert (1, len(base) + 1) in reported


class TestJoinResult:
    def test_pair_set(self):
        result = JoinResult(pairs=[(1, 2, 0.9), (3, 4, 0.8)])
        assert result.pair_set() == {(1, 2), (3, 4)}
        assert result.num_pairs == 2

    def test_empty(self):
        result = JoinResult()
        assert result.num_pairs == 0
        assert result.pair_set() == set()

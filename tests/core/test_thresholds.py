"""Tests for the sampling-threshold policies (Sections 5 and 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.thresholds import (
    AdversarialThreshold,
    ConstantThreshold,
    CorrelatedThreshold,
)


class TestAdversarialThreshold:
    def test_formula(self):
        """s(x, j, i) = 1 / (b1 |x| - j), identical across items."""
        policy = AdversarialThreshold(b1=0.5)
        bound = policy.bind(list(range(20)))  # |x| = 20
        values = bound.sampling_probabilities(3, np.array([1, 5, 9]))
        assert np.allclose(values, 1.0 / (0.5 * 20 - 3))

    def test_level_increases_probability(self):
        policy = AdversarialThreshold(b1=0.5)
        bound = policy.bind(list(range(20)))
        level0 = bound.sampling_probabilities(0, np.array([1]))[0]
        level5 = bound.sampling_probabilities(5, np.array([1]))[0]
        assert level5 > level0

    def test_clamped_to_one(self):
        policy = AdversarialThreshold(b1=0.5)
        bound = policy.bind(list(range(4)))  # b1 |x| = 2
        values = bound.sampling_probabilities(5, np.array([1, 2]))
        assert np.all(values == 1.0)

    def test_invalid_b1(self):
        with pytest.raises(ValueError):
            AdversarialThreshold(0.0)
        with pytest.raises(ValueError):
            AdversarialThreshold(1.2)

    def test_describe_mentions_b1(self):
        assert "0.4" in AdversarialThreshold(0.4).describe()


class TestConstantThreshold:
    def test_formula_ignores_level(self):
        """Chosen Path's s(x, j, i) = 1 / (b1 |x|) is level-independent."""
        policy = ConstantThreshold(b1=0.25)
        bound = policy.bind(list(range(16)))
        level0 = bound.sampling_probabilities(0, np.array([1, 2]))
        level7 = bound.sampling_probabilities(7, np.array([1, 2]))
        assert np.allclose(level0, 1.0 / (0.25 * 16))
        assert np.allclose(level0, level7)

    def test_larger_sets_get_smaller_threshold(self):
        policy = ConstantThreshold(b1=0.5)
        small = policy.bind(list(range(4))).sampling_probabilities(0, np.array([0]))[0]
        large = policy.bind(list(range(40))).sampling_probabilities(0, np.array([0]))[0]
        assert large < small

    def test_invalid_b1(self):
        with pytest.raises(ValueError):
            ConstantThreshold(-0.1)


class TestCorrelatedThreshold:
    def setup_method(self):
        self.probabilities = np.concatenate([np.full(20, 0.25), np.full(400, 0.02)])
        self.alpha = 0.6
        self.num_vectors = 500

    def test_rare_items_sampled_more_aggressively(self):
        """Smaller p̂_i means larger sampling probability — the skew adaptation."""
        policy = CorrelatedThreshold(self.probabilities, self.alpha, self.num_vectors)
        bound = policy.bind([0, 100])  # item 0 frequent (0.25), item 100 rare (0.02)
        values = bound.sampling_probabilities(0, np.array([0, 100]))
        assert values[1] > values[0]

    def test_formula_matches_paper(self):
        """s(x, j, i) = (1 + δ) / (p̂_i m − j) with m = Σ p_i."""
        policy = CorrelatedThreshold(
            self.probabilities, self.alpha, self.num_vectors, boost_delta=0.5
        )
        expected_size = float(self.probabilities.sum())
        conditional = 0.25 * (1 - self.alpha) + self.alpha
        bound = policy.bind([0, 5])
        value = bound.sampling_probabilities(2, np.array([0]))[0]
        assert value == pytest.approx(min(1.0, 1.5 / (conditional * expected_size - 2)))

    def test_default_delta_matches_formula(self):
        policy = CorrelatedThreshold(self.probabilities, self.alpha, self.num_vectors)
        expected_size = float(self.probabilities.sum())
        capital_c = expected_size / math.log(self.num_vectors)
        assert policy.boost_delta == pytest.approx(3.0 / math.sqrt(self.alpha * capital_c))

    def test_default_delta_degenerate_inputs(self):
        assert CorrelatedThreshold.default_boost_delta(0.5, 0.0, 100) == 0.0

    def test_conditional_probabilities_exposed(self):
        policy = CorrelatedThreshold(self.probabilities, self.alpha, self.num_vectors)
        expected = self.probabilities * (1 - self.alpha) + self.alpha
        assert np.allclose(policy.conditional_probabilities, expected)

    def test_probabilities_validation(self):
        with pytest.raises(ValueError):
            CorrelatedThreshold(np.array([1.5]), 0.5, 10)
        with pytest.raises(ValueError):
            CorrelatedThreshold(np.array([]), 0.5, 10)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CorrelatedThreshold(self.probabilities, 0.0, 10)

    def test_num_vectors_validation(self):
        with pytest.raises(ValueError):
            CorrelatedThreshold(self.probabilities, 0.5, 0)

    def test_bind_rejects_out_of_universe_items(self):
        policy = CorrelatedThreshold(self.probabilities, self.alpha, self.num_vectors)
        with pytest.raises(ValueError):
            policy.bind([10_000])

    def test_values_clamped_to_unit_interval(self):
        tiny = CorrelatedThreshold(np.full(5, 0.01), 0.9, 10, boost_delta=100.0)
        bound = tiny.bind([0, 1, 2])
        values = bound.sampling_probabilities(0, np.array([0, 1, 2]))
        assert np.all(values <= 1.0)
        assert np.all(values >= 0.0)

    def test_describe(self):
        description = CorrelatedThreshold(self.probabilities, self.alpha, self.num_vectors).describe()
        assert "correlated" in description

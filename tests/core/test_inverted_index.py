"""Tests for the filter inverted index."""

from __future__ import annotations

import pytest

from repro.core.inverted_index import InvertedFilterIndex


class TestAdd:
    def test_add_returns_count(self):
        index = InvertedFilterIndex()
        assert index.add(0, [(1, 2), (3,)]) == 2

    def test_negative_vector_id_rejected(self):
        with pytest.raises(ValueError):
            InvertedFilterIndex().add(-1, [(1,)])

    def test_add_many_uses_positions(self):
        index = InvertedFilterIndex()
        total = index.add_many([[(1,)], [(1,), (2,)]])
        assert total == 3
        assert index.lookup((1,)) == [0, 1]
        assert index.lookup((2,)) == [1]

    def test_duplicate_paths_allowed(self):
        index = InvertedFilterIndex()
        index.add(0, [(1, 2), (1, 2)])
        assert index.lookup((1, 2)) == [0, 0]
        assert index.total_entries == 2


class TestLookup:
    def test_missing_path_empty(self):
        assert InvertedFilterIndex().lookup((9, 9)) == []

    def test_contains(self):
        index = InvertedFilterIndex()
        index.add(3, [(4, 5)])
        assert (4, 5) in index
        assert (5, 4) not in index

    def test_candidates_counts_multiplicity(self):
        """candidates() yields one entry per shared filter, matching the
        paper's work measure sum_x |F(q) ∩ F(x)|."""
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        candidates = list(index.candidates([(1,), (2,), (3,)]))
        assert sorted(candidates) == [0, 0, 1]

    def test_lists_convert_to_tuples(self):
        index = InvertedFilterIndex()
        index.add(0, [[7, 8]])
        assert index.lookup((7, 8)) == [0]


class TestStatistics:
    def test_counts(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        assert index.num_filters == 2
        assert index.total_entries == 3
        assert len(index) == 2

    def test_posting_sizes(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        assert sorted(index.posting_sizes()) == [1, 2]

    def test_heaviest_filters(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,)])
        index.add(1, [(1,), (2,)])
        index.add(2, [(1,)])
        heaviest = index.heaviest_filters(1)
        assert heaviest == [((1,), 3)]

    def test_repr(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,)])
        assert "num_filters=1" in repr(index)

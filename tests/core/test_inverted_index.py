"""Tests for the filter inverted index (compact array-backed postings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inverted_index import STATE_ARRAY_NAMES, InvertedFilterIndex
from repro.hashing.pairwise import fold_path


class TestAdd:
    def test_add_returns_count(self):
        index = InvertedFilterIndex()
        assert index.add(0, [(1, 2), (3,)]) == 2

    def test_negative_vector_id_rejected(self):
        with pytest.raises(ValueError):
            InvertedFilterIndex().add(-1, [(1,)])

    def test_add_many_uses_positions(self):
        index = InvertedFilterIndex()
        total = index.add_many([[(1,)], [(1,), (2,)]])
        assert total == 3
        assert index.lookup((1,)) == [0, 1]
        assert index.lookup((2,)) == [1]

    def test_duplicate_paths_allowed(self):
        index = InvertedFilterIndex()
        index.add(0, [(1, 2), (1, 2)])
        assert index.lookup((1, 2)) == [0, 0]
        assert index.total_entries == 2


class TestLookup:
    def test_missing_path_empty(self):
        assert InvertedFilterIndex().lookup((9, 9)) == []

    def test_contains(self):
        index = InvertedFilterIndex()
        index.add(3, [(4, 5)])
        assert (4, 5) in index
        assert (5, 4) not in index

    def test_candidates_counts_multiplicity(self):
        """candidates() yields one entry per shared filter, matching the
        paper's work measure sum_x |F(q) ∩ F(x)|."""
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        candidates = list(index.candidates([(1,), (2,), (3,)]))
        assert sorted(candidates) == [0, 0, 1]

    def test_lists_convert_to_tuples(self):
        index = InvertedFilterIndex()
        index.add(0, [[7, 8]])
        assert index.lookup((7, 8)) == [0]


class TestStatistics:
    def test_counts(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        assert index.num_filters == 2
        assert index.total_entries == 3
        assert len(index) == 2

    def test_posting_sizes(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,), (2,)])
        index.add(1, [(1,)])
        assert sorted(index.posting_sizes()) == [1, 2]

    def test_heaviest_filters(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,)])
        index.add(1, [(1,), (2,)])
        index.add(2, [(1,)])
        heaviest = index.heaviest_filters(1)
        assert heaviest == [((1,), 3)]

    def test_repr(self):
        index = InvertedFilterIndex()
        index.add(0, [(1,)])
        assert "num_filters=1" in repr(index)


def _populated() -> InvertedFilterIndex:
    index = InvertedFilterIndex()
    index.add(0, [(1,), (2, 3), (4,)])
    index.add(1, [(2, 3), (4,)])
    index.add(2, [(4,), (4,)])
    return index


class TestKeyedAdd:
    def test_add_with_precomputed_keys(self):
        index = InvertedFilterIndex()
        paths = [(1, 2), (3,)]
        index.add(5, paths, keys=[fold_path(path) for path in paths])
        assert index.lookup((1, 2)) == [5]
        assert index.lookup((3,)) == [5]

    def test_key_count_mismatch_rejected(self):
        index = InvertedFilterIndex()
        with pytest.raises(ValueError):
            index.add(0, [(1,), (2,)], keys=[fold_path((1,))])
        # The failed add must not have mutated the index.
        assert index.num_filters == 0
        assert index.total_entries == 0
        assert index.lookup((1,)) == []

    def test_lookup_keyed_matches_lookup(self):
        index = _populated()
        for path in [(1,), (2, 3), (4,), (9, 9)]:
            assert index.lookup_keyed(path, fold_path(path)) == index.lookup(path)

    def test_candidates_with_keys(self):
        index = _populated()
        paths = [(2, 3), (4,)]
        keys = [fold_path(path) for path in paths]
        assert list(index.candidates(paths, keys)) == list(index.candidates(paths))


class TestKeyCollisions:
    """Distinct paths sharing one 64-bit key (forced via ``keys=``) must keep
    separate postings on every path: add, lookup, compact, state rebuild."""

    SAME_KEY = 12345

    def _collided(self) -> InvertedFilterIndex:
        index = InvertedFilterIndex()
        index.add(0, [(1, 2)], keys=[self.SAME_KEY])
        index.add(1, [(3, 4)], keys=[self.SAME_KEY])
        index.add(2, [(1, 2)], keys=[self.SAME_KEY])
        return index

    def test_collided_paths_stay_separate(self):
        index = self._collided()
        assert index.num_filters == 2
        assert index.lookup_keyed((1, 2), self.SAME_KEY) == [0, 2]
        assert index.lookup_keyed((3, 4), self.SAME_KEY) == [1]
        assert index.lookup_keyed((9, 9), self.SAME_KEY) == []

    def test_collided_paths_survive_compaction(self):
        index = self._collided()
        index.compact()
        assert index.lookup_keyed((1, 2), self.SAME_KEY) == [0, 2]
        assert index.lookup_keyed((3, 4), self.SAME_KEY) == [1]
        index.add(7, [(3, 4)], keys=[self.SAME_KEY])
        assert index.lookup_keyed((3, 4), self.SAME_KEY) == [1, 7]

    def test_from_state_rebuilds_collision_chain(self):
        """True fold_path collisions are unobservable in practice, so force
        one through the state arrays: two distinct stored paths whose keys
        collide after reload must both stay reachable."""
        import repro.core.inverted_index as inverted_module

        index = self._collided()
        state = index.to_state()
        original_fold = inverted_module.fold_paths_csr
        try:
            inverted_module.fold_paths_csr = lambda items, offsets: np.full(
                offsets.size - 1, np.uint64(self.SAME_KEY), dtype=np.uint64
            )
            restored = InvertedFilterIndex.from_state(state)
        finally:
            inverted_module.fold_paths_csr = original_fold
        assert restored.lookup_keyed((1, 2), self.SAME_KEY) == [0, 2]
        assert restored.lookup_keyed((3, 4), self.SAME_KEY) == [1]
        assert restored.lookup_keyed((5, 6), self.SAME_KEY) == []


class TestCompaction:
    def test_compact_preserves_lookups(self):
        index = _populated()
        before = {path: index.lookup(path) for path in [(1,), (2, 3), (4,)]}
        index.compact()
        for path, postings in before.items():
            assert index.lookup(path) == postings
        assert index.num_filters == 3
        assert index.total_entries == 7

    def test_compact_is_idempotent(self):
        index = _populated()
        index.compact()
        index.compact()
        assert index.lookup((4,)) == [0, 1, 2, 2]

    def test_adds_after_compact_append_in_order(self):
        index = _populated()
        index.compact()
        index.add(7, [(4,), (8, 8)])
        assert index.lookup((4,)) == [0, 1, 2, 2, 7]
        assert index.lookup((8, 8)) == [7]
        index.compact()
        assert index.lookup((4,)) == [0, 1, 2, 2, 7]
        assert index.lookup((8, 8)) == [7]
        assert index.num_filters == 4

    def test_posting_sizes_consistent_across_compaction(self):
        index = _populated()
        uncompacted = sorted(index.posting_sizes())
        index.compact()
        assert sorted(index.posting_sizes()) == uncompacted
        assert index.heaviest_filters(1) == [((4,), 4)]


class TestProbeBatch:
    def test_matches_scalar_lookups(self):
        index = _populated()
        paths = [(1,), (2, 3), (4,), (9, 9), (2, 3)]
        keys = [fold_path(path) for path in paths]
        ids, offsets = index.probe_batch(paths, keys)
        assert offsets.tolist()[0] == 0
        assert offsets.size == len(paths) + 1
        for position, path in enumerate(paths):
            segment = ids[offsets[position] : offsets[position + 1]].tolist()
            assert segment == index.lookup(path)

    def test_empty_probe_list(self):
        ids, offsets = _populated().probe_batch([], [])
        assert ids.size == 0
        assert offsets.tolist() == [0]

    def test_empty_index(self):
        index = InvertedFilterIndex()
        paths = [(1,), (2,)]
        ids, offsets = index.probe_batch(paths, [fold_path(p) for p in paths])
        assert ids.size == 0
        assert offsets.tolist() == [0, 0, 0]

    def test_auto_compacts_pending_postings(self):
        index = _populated()
        index.compact()
        index.add(9, [(4,), (8, 8)])
        paths = [(4,), (8, 8)]
        ids, offsets = index.probe_batch(paths, [fold_path(p) for p in paths])
        assert ids[offsets[0] : offsets[1]].tolist() == [0, 1, 2, 2, 9]
        assert ids[offsets[1] : offsets[2]].tolist() == [9]

    def test_key_collision_does_not_leak_foreign_postings(self):
        """A probe whose 64-bit key matches a stored slot but whose path
        differs (a forced fold collision) must come back empty."""
        index = InvertedFilterIndex()
        index.add(0, [(1, 2)], keys=[777])
        index.compact()
        ids, offsets = index.probe_batch([(3, 4), (1, 2)], [777, 777])
        assert ids[offsets[0] : offsets[1]].tolist() == []
        assert ids[offsets[1] : offsets[2]].tolist() == [0]

    def test_chained_collision_slots_resolved(self):
        index = InvertedFilterIndex()
        index.add(0, [(1, 2)], keys=[777])
        index.add(1, [(3, 4)], keys=[777])
        index.add(2, [(1, 2)], keys=[777])
        paths = [(1, 2), (3, 4), (5, 6)]
        ids, offsets = index.probe_batch(paths, [777, 777, 777])
        assert ids[offsets[0] : offsets[1]].tolist() == [0, 2]
        assert ids[offsets[1] : offsets[2]].tolist() == [1]
        assert ids[offsets[2] : offsets[3]].tolist() == []


class TestBulkCompaction:
    def test_slots_ordered_by_key_after_bulk_compact(self):
        index = _populated()
        index.compact()
        keys = index._path_keys
        assert np.all(keys[1:] >= keys[:-1])

    def test_incremental_compact_matches_fresh_build(self):
        """compact → add → compact must answer exactly like adding
        everything before a single compact."""
        incremental = _populated()
        incremental.compact()
        incremental.add(7, [(4,), (8, 8), (1,)])
        incremental.compact()
        fresh = _populated()
        fresh.add(7, [(4,), (8, 8), (1,)])
        fresh.compact()
        for path in [(1,), (2, 3), (4,), (8, 8), (9, 9)]:
            assert incremental.lookup(path) == fresh.lookup(path)
        assert incremental.num_filters == fresh.num_filters
        assert incremental.total_entries == fresh.total_entries

    def test_from_state_accepts_unsorted_slot_order(self):
        """Files written before the CSR-native probe pipeline store slots in
        first-registration order; the rebuilt probe tables must resolve them
        identically."""
        index = _populated()
        state = {name: array.copy() for name, array in index.to_state().items()}
        # Reverse the slot order by hand, keeping rows consistent.
        num_slots = state["path_offsets"].size - 1
        order = list(range(num_slots))[::-1]
        path_rows = [
            state["path_items"][state["path_offsets"][s] : state["path_offsets"][s + 1]]
            for s in order
        ]
        posting_rows = [
            state["posting_ids"][
                state["posting_offsets"][s] : state["posting_offsets"][s + 1]
            ]
            for s in order
        ]
        shuffled = {
            "path_items": np.concatenate(path_rows),
            "path_offsets": np.concatenate(
                [[0], np.cumsum([row.size for row in path_rows])]
            ),
            "posting_ids": np.concatenate(posting_rows),
            "posting_offsets": np.concatenate(
                [[0], np.cumsum([row.size for row in posting_rows])]
            ),
        }
        restored = InvertedFilterIndex.from_state(shuffled)
        for path in [(1,), (2, 3), (4,), (9, 9)]:
            assert restored.lookup(path) == index.lookup(path)
        paths = [(1,), (2, 3), (4,)]
        keys = [fold_path(p) for p in paths]
        ids, offsets = restored.probe_batch(paths, keys)
        expected_ids, expected_offsets = index.probe_batch(paths, keys)
        assert ids.tolist() == expected_ids.tolist()
        assert offsets.tolist() == expected_offsets.tolist()


class TestStateRoundTrip:
    def test_to_state_from_state_round_trip(self):
        index = _populated()
        restored = InvertedFilterIndex.from_state(index.to_state())
        for path in [(1,), (2, 3), (4,), (9,)]:
            assert restored.lookup(path) == index.lookup(path)
        assert restored.num_filters == index.num_filters
        assert restored.total_entries == index.total_entries

    def test_state_array_names(self):
        state = _populated().to_state()
        assert set(state) == set(STATE_ARRAY_NAMES)
        for array in state.values():
            assert isinstance(array, np.ndarray)

    def test_restored_index_accepts_new_postings(self):
        restored = InvertedFilterIndex.from_state(_populated().to_state())
        restored.add(9, [(4,), (5, 6)])
        assert restored.lookup((4,)) == [0, 1, 2, 2, 9]
        assert restored.lookup((5, 6)) == [9]

    def test_missing_array_rejected(self):
        state = dict(_populated().to_state())
        del state["posting_ids"]
        with pytest.raises(ValueError, match="missing"):
            InvertedFilterIndex.from_state(state)

    def test_inconsistent_offsets_rejected(self):
        state = dict(_populated().to_state())
        state["posting_offsets"] = state["posting_offsets"][:-1]
        with pytest.raises(ValueError):
            InvertedFilterIndex.from_state(state)

    def test_negative_ids_rejected(self):
        state = dict(_populated().to_state())
        bad = state["posting_ids"].copy()
        bad[0] = -1
        state["posting_ids"] = bad
        with pytest.raises(ValueError, match="non-negative"):
            InvertedFilterIndex.from_state(state)

    def test_negative_path_items_rejected(self):
        state = dict(_populated().to_state())
        bad = state["path_items"].copy()
        bad[0] = -1
        state["path_items"] = bad
        with pytest.raises(ValueError, match="non-negative"):
            InvertedFilterIndex.from_state(state)

    def test_empty_index_round_trip(self):
        restored = InvertedFilterIndex.from_state(InvertedFilterIndex().to_state())
        assert restored.num_filters == 0
        assert restored.lookup((1,)) == []

"""Tests for index configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig


class TestSkewAdaptiveIndexConfig:
    def test_defaults_valid(self):
        config = SkewAdaptiveIndexConfig()
        assert 0.0 < config.b1 <= 1.0
        assert config.max_paths_per_vector is not None

    def test_invalid_b1(self):
        with pytest.raises(ValueError):
            SkewAdaptiveIndexConfig(b1=0.0)
        with pytest.raises(ValueError):
            SkewAdaptiveIndexConfig(b1=1.5)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            SkewAdaptiveIndexConfig(repetitions=0)

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            SkewAdaptiveIndexConfig(max_depth=-1)

    def test_invalid_max_paths(self):
        with pytest.raises(ValueError):
            SkewAdaptiveIndexConfig(max_paths_per_vector=0)

    def test_frozen(self):
        config = SkewAdaptiveIndexConfig()
        with pytest.raises(AttributeError):
            config.b1 = 0.9  # type: ignore[misc]


class TestCorrelatedIndexConfig:
    def test_defaults_valid(self):
        config = CorrelatedIndexConfig()
        assert 0.0 < config.alpha <= 1.0
        assert config.acceptance_divisor == 1.3

    def test_acceptance_threshold(self):
        config = CorrelatedIndexConfig(alpha=0.65)
        assert config.acceptance_threshold == pytest.approx(0.65 / 1.3)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(alpha=0.0)
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(alpha=1.1)

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(acceptance_divisor=0.5)

    def test_invalid_boost_delta(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(boost_delta=-0.1)

    def test_explicit_boost_delta_allowed(self):
        assert CorrelatedIndexConfig(boost_delta=0.0).boost_delta == 0.0

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(repetitions=-2)

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(max_depth=0)

    def test_invalid_max_paths(self):
        with pytest.raises(ValueError):
            CorrelatedIndexConfig(max_paths_per_vector=-5)


class TestPersistenceConfig:
    def test_defaults_are_v3_sharded(self):
        from repro.core.config import PersistenceConfig

        config = PersistenceConfig()
        assert config.format_version == 3
        assert config.shards == 8
        assert config.io_workers is None
        assert config.compress is True
        assert config.validate_postings is True

    def test_invalid_format_version(self):
        from repro.core.config import PersistenceConfig

        with pytest.raises(ValueError, match="format_version"):
            PersistenceConfig(format_version=1)
        with pytest.raises(ValueError, match="format_version"):
            PersistenceConfig(format_version=4)

    def test_invalid_shards_and_io_workers(self):
        from repro.core.config import PersistenceConfig

        with pytest.raises(ValueError, match="shards"):
            PersistenceConfig(shards=0)
        with pytest.raises(ValueError, match="io_workers"):
            PersistenceConfig(io_workers=0)

    def test_v2_downgrade_config_valid(self):
        from repro.core.config import PersistenceConfig

        config = PersistenceConfig(format_version=2, compress=False)
        assert config.format_version == 2


class TestBatchQueryConfigShardWorkers:
    def test_shard_workers_default_none(self):
        from repro.core.config import BatchQueryConfig

        assert BatchQueryConfig().shard_workers is None

    def test_invalid_shard_workers(self):
        from repro.core.config import BatchQueryConfig

        with pytest.raises(ValueError, match="shard_workers"):
            BatchQueryConfig(shard_workers=0)

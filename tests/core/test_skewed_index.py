"""Tests for the adversarial-query skew-adaptive index (Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.data.datasets import SetCollection
from repro.similarity.measures import braun_blanquet


@pytest.fixture(scope="module")
def built_index(skewed_distribution, skewed_dataset):
    index = SkewAdaptiveIndex(
        skewed_distribution,
        config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=6, seed=3),
    )
    index.build(skewed_dataset)
    return index


class TestConstruction:
    def test_accepts_raw_probabilities(self):
        index = SkewAdaptiveIndex(np.full(20, 0.1), b1=0.4)
        assert index.distribution.dimension == 20
        assert index.b1 == 0.4

    def test_config_overrides_arguments(self):
        config = SkewAdaptiveIndexConfig(b1=0.7)
        index = SkewAdaptiveIndex(np.full(5, 0.1), b1=0.2, config=config)
        assert index.b1 == 0.7

    def test_query_before_build_raises(self):
        index = SkewAdaptiveIndex(np.full(5, 0.1))
        with pytest.raises(RuntimeError):
            index.query({1, 2})

    def test_properties_before_build(self):
        index = SkewAdaptiveIndex(np.full(5, 0.1))
        assert index.num_indexed == 0
        with pytest.raises(RuntimeError):
            _ = index.build_stats

    def test_repr(self, built_index):
        assert "SkewAdaptiveIndex" in repr(built_index)


class TestBuild:
    def test_build_stats(self, built_index, skewed_dataset):
        stats = built_index.build_stats
        assert stats.num_vectors == len(skewed_dataset)
        assert stats.total_filters > 0
        assert built_index.total_stored_filters == stats.total_filters
        assert built_index.num_indexed == len(skewed_dataset)

    def test_from_collection_uses_empirical_frequencies(self, skewed_dataset):
        collection = SetCollection(skewed_dataset)
        index = SkewAdaptiveIndex.from_collection(
            collection, b1=0.5, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
        )
        assert index.num_indexed == len(skewed_dataset)
        assert index.distribution.dimension == collection.dimension

    def test_from_collection_accepts_plain_iterables(self):
        data = [{1, 2, 3}, {2, 3, 4}, {8, 9}]
        index = SkewAdaptiveIndex.from_collection(
            data, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=0), dimension=12
        )
        assert index.num_indexed == 3


class TestQuery:
    def test_self_queries_found(self, built_index, skewed_dataset):
        """Querying with stored vectors finds something at similarity >= b1."""
        found = 0
        for index in range(0, 40):
            result, _stats = built_index.query(skewed_dataset[index])
            if result is not None:
                assert braun_blanquet(built_index.get_vector(result), skewed_dataset[index]) >= 0.5
                found += 1
        assert found >= 36

    def test_perturbed_queries_found(self, built_index, skewed_dataset):
        """Queries sharing ~70% of a stored vector's items are still answered."""
        rng = np.random.default_rng(0)
        found = 0
        for index in range(0, 30):
            stored = sorted(skewed_dataset[index])
            if len(stored) < 6:
                found += 1  # too small to perturb meaningfully; skip as success
                continue
            keep = max(1, int(0.8 * len(stored)))
            query = frozenset(rng.choice(stored, size=keep, replace=False).tolist())
            result, _stats = built_index.query(query)
            if result is not None and braun_blanquet(built_index.get_vector(result), query) >= 0.5:
                found += 1
        assert found >= 22

    def test_returned_result_meets_threshold(self, built_index, skewed_dataset):
        for index in range(25):
            result, _stats = built_index.query(skewed_dataset[index])
            if result is not None:
                similarity = braun_blanquet(built_index.get_vector(result), skewed_dataset[index])
                assert similarity >= built_index.b1

    def test_query_candidates_and_get_vector(self, built_index, skewed_dataset):
        candidates, stats = built_index.query_candidates(skewed_dataset[0])
        assert stats.unique_candidates == len(candidates)
        for candidate in list(candidates)[:5]:
            assert isinstance(built_index.get_vector(candidate), frozenset)

    def test_work_is_sublinear_on_average(self, built_index, skewed_dataset):
        """Candidates examined per query stay well below a linear scan."""
        totals = []
        for index in range(30):
            _result, stats = built_index.query(skewed_dataset[index])
            totals.append(stats.candidates_examined)
        assert float(np.mean(totals)) < 0.6 * len(skewed_dataset) * built_index.config.repetitions

"""Tests for the shared locality-sensitive filtering engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import FilterEngine, default_repetitions
from repro.core.thresholds import AdversarialThreshold
from repro.similarity.measures import braun_blanquet


def make_engine(probabilities: np.ndarray, num_vectors: int, **kwargs) -> FilterEngine:
    defaults = dict(
        threshold_policy=AdversarialThreshold(0.5),
        acceptance_threshold=0.5,
        num_vectors_hint=num_vectors,
        repetitions=4,
        seed=0,
    )
    defaults.update(kwargs)
    return FilterEngine(probabilities, **defaults)


@pytest.fixture(scope="module")
def small_dataset():
    rng = np.random.default_rng(42)
    probabilities = np.full(120, 0.15)
    mask = rng.random((80, 120)) < probabilities
    return probabilities, [frozenset(np.flatnonzero(row).tolist()) for row in mask]


class TestDefaultRepetitions:
    def test_small(self):
        assert default_repetitions(1) == 1

    def test_logarithmic_growth(self):
        assert default_repetitions(1024) == 11

    def test_monotone(self):
        assert default_repetitions(10_000) >= default_repetitions(100)


class TestConstruction:
    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            make_engine(np.array([]), 10)

    def test_invalid_acceptance_threshold(self):
        with pytest.raises(ValueError):
            make_engine(np.full(5, 0.2), 10, acceptance_threshold=1.5)

    def test_invalid_num_vectors_hint(self):
        with pytest.raises(ValueError):
            make_engine(np.full(5, 0.2), 0)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            make_engine(np.full(5, 0.2), 10, repetitions=0)

    def test_invalid_query_mode(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        with pytest.raises(ValueError):
            engine.query(dataset[0], mode="weird")


class TestBuild:
    def test_build_stats(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        stats = engine.build(dataset)
        assert stats.num_vectors == len(dataset)
        assert stats.repetitions == 4
        assert stats.total_filters > 0
        assert engine.total_stored_filters == stats.total_filters

    def test_rebuild_replaces_data(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        engine.build(dataset[:10])
        assert len(engine.vectors) == 10

    def test_empty_vectors_skipped(self, small_dataset):
        probabilities, _dataset = small_dataset
        engine = make_engine(probabilities, 10)
        stats = engine.build([frozenset(), frozenset({1, 2, 3})])
        assert stats.num_vectors == 2
        assert stats.total_filters >= 0


class TestQuery:
    def test_self_query_finds_self(self, small_dataset):
        """Querying with a stored vector should find a vector at similarity 1."""
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset), repetitions=6)
        engine.build(dataset)
        found = 0
        for index in range(0, 30):
            result, _stats = engine.query(dataset[index])
            if result is not None and braun_blanquet(dataset[result], dataset[index]) >= 0.5:
                found += 1
        assert found >= 27  # near-perfect self-recall

    def test_query_empty_set(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        result, stats = engine.query(frozenset())
        assert result is None
        assert stats.total_work == 0

    def test_query_before_build(self, small_dataset):
        probabilities, _dataset = small_dataset
        engine = make_engine(probabilities, 10)
        result, _stats = engine.query(frozenset({1, 2}))
        assert result is None

    def test_returned_vector_meets_threshold(self, small_dataset):
        """Anything returned must actually satisfy the acceptance threshold."""
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset), repetitions=6)
        engine.build(dataset)
        for index in range(20):
            result, _stats = engine.query(dataset[index])
            if result is not None:
                assert braun_blanquet(dataset[result], dataset[index]) >= 0.5

    def test_best_mode_returns_most_similar(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset), repetitions=6)
        engine.build(dataset)
        result, _stats = engine.query(dataset[5], mode="best")
        assert result is not None
        assert braun_blanquet(dataset[result], dataset[5]) == 1.0

    def test_first_mode_no_more_work_than_best(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset), repetitions=6)
        engine.build(dataset)
        _result_first, stats_first = engine.query(dataset[3], mode="first")
        _result_best, stats_best = engine.query(dataset[3], mode="best")
        assert stats_first.candidates_examined <= stats_best.candidates_examined

    def test_dissimilar_query_returns_none(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        # A query over items that no dataset vector can cover densely.
        query = frozenset(range(115, 120))
        result, _stats = engine.query(query)
        if result is not None:
            assert braun_blanquet(dataset[result], query) >= 0.5

    def test_query_stats_populated(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        _result, stats = engine.query(dataset[0])
        assert stats.repetitions_used >= 1
        assert stats.filters_generated >= 0
        assert stats.unique_candidates <= stats.candidates_examined


class TestChunkProbeDedupe:
    def test_chunk_probe_dedupe_is_collision_free(self, small_dataset):
        """Batched probe deduplication must be by *path*: two queries whose
        distinct filters share a forced 64-bit key must not see each other's
        postings (regression test for a key-only dedupe)."""
        from repro.core.inverted_index import InvertedFilterIndex
        from repro.core.paths import PathGenerationResult

        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset[:4])
        inverted = InvertedFilterIndex()
        inverted.add(0, [(1, 2)], keys=[777])
        inverted.compact()
        generations = [
            PathGenerationResult(paths=[(1, 2)], truncated=False, expansions=1, keys=[777]),
            PathGenerationResult(paths=[(3, 4)], truncated=False, expansions=1, keys=[777]),
        ]
        probe = engine._probe_chunk_repetition(inverted, generations)
        assert probe is not None
        occurrence_ids, query_offsets, distinct, duplicate, _shards, _query_shards = probe
        first = occurrence_ids[query_offsets[0] : query_offsets[1]].tolist()
        second = occurrence_ids[query_offsets[1] : query_offsets[2]].tolist()
        assert first == [0]
        assert second == []  # colliding key, different path: no foreign postings
        assert distinct == 2
        assert duplicate == 0


class TestQueryFiltersAndCandidates:
    def test_query_filters_deterministic(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        assert engine.query_filters(dataset[0], 0) == engine.query_filters(dataset[0], 0)

    def test_query_candidates_superset_of_query_result(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset), repetitions=6)
        engine.build(dataset)
        result, _stats = engine.query(dataset[7])
        candidates, _cstats = engine.query_candidates(dataset[7])
        if result is not None:
            assert result in candidates

    def test_query_candidates_empty_query(self, small_dataset):
        probabilities, dataset = small_dataset
        engine = make_engine(probabilities, len(dataset))
        engine.build(dataset)
        candidates, stats = engine.query_candidates(frozenset())
        assert candidates == set()
        assert stats.unique_candidates == 0

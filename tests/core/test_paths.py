"""Tests for the recursive path (filter) generation engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.paths import PathGenerator, default_max_depth
from repro.core.thresholds import AdversarialThreshold, ConstantThreshold
from repro.hashing.pairwise import PathHasher


def make_generator(
    probabilities: np.ndarray,
    num_vectors: int = 100,
    seed: int = 0,
    **kwargs,
) -> PathGenerator:
    defaults = dict(
        stop_product=1.0 / num_vectors,
        max_depth=default_max_depth(num_vectors, float(probabilities.max())),
    )
    defaults.update(kwargs)
    return PathGenerator(probabilities, PathHasher(seed), **defaults)


class TestDefaultMaxDepth:
    def test_small_dataset(self):
        assert default_max_depth(1, 0.5) == 2

    def test_grows_with_n(self):
        assert default_max_depth(10_000, 0.5) > default_max_depth(100, 0.5)

    def test_grows_with_probability(self):
        assert default_max_depth(1000, 0.9) > default_max_depth(1000, 0.1)

    def test_covers_stopping_rule(self):
        """A path of max_depth items at p_max has product below 1/n."""
        n, p_max = 5000, 0.4
        depth = default_max_depth(n, p_max)
        assert p_max ** (depth - 2) <= 1.0 / n


class TestValidation:
    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            PathGenerator(np.array([]), PathHasher(0), stop_product=0.1, max_depth=3)

    def test_invalid_stop_product(self):
        with pytest.raises(ValueError):
            PathGenerator(np.array([0.5]), PathHasher(0), stop_product=0.0, max_depth=3)

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            PathGenerator(np.array([0.5]), PathHasher(0), stop_product=0.1, max_depth=0)

    def test_invalid_max_paths(self):
        with pytest.raises(ValueError):
            PathGenerator(
                np.array([0.5]), PathHasher(0), stop_product=0.1, max_depth=3, max_paths=0
            )

    def test_out_of_universe_items_rejected(self):
        generator = make_generator(np.full(10, 0.2))
        with pytest.raises(ValueError):
            generator.generate([100], AdversarialThreshold(0.5).bind([100]))


class TestGeneration:
    def test_empty_vector_no_paths(self):
        generator = make_generator(np.full(10, 0.2))
        result = generator.generate([], AdversarialThreshold(0.5).bind([]))
        assert result.paths == []
        assert result.expansions == 0

    def test_paths_only_use_vector_items(self):
        probabilities = np.full(50, 0.2)
        generator = make_generator(probabilities, num_vectors=50)
        items = [1, 5, 9, 13, 17, 21, 25, 29]
        result = generator.generate(items, AdversarialThreshold(0.5).bind(items))
        for path in result.paths:
            assert set(path).issubset(set(items))

    def test_paths_have_no_repeated_items(self):
        """Sampling is without replacement: an item appears at most once per path."""
        probabilities = np.full(50, 0.3)
        generator = make_generator(probabilities, num_vectors=200)
        items = list(range(0, 50, 2))
        result = generator.generate(items, AdversarialThreshold(0.4).bind(items))
        for path in result.paths:
            assert len(path) == len(set(path))

    def test_stopping_rule_respected(self):
        """Every finished path has probability product at most 1/n, and the
        prefix without the last item has product above 1/n (minimality)."""
        num_vectors = 100
        probabilities = np.full(60, 0.25)
        items = list(range(30))
        all_paths = []
        for seed in range(8):
            generator = make_generator(probabilities, num_vectors=num_vectors, seed=seed)
            all_paths.extend(
                generator.generate(items, AdversarialThreshold(0.5).bind(items)).paths
            )
        assert all_paths, "expected at least one path across eight seeds"
        for path in all_paths:
            product = float(np.prod(probabilities[list(path)]))
            prefix_product = float(np.prod(probabilities[list(path[:-1])])) if len(path) > 1 else 1.0
            assert product <= 1.0 / num_vectors + 1e-12
            assert prefix_product > 1.0 / num_vectors

    def test_deterministic_for_fixed_seed(self):
        probabilities = np.full(40, 0.25)
        items = list(range(20))
        result_a = make_generator(probabilities, seed=3).generate(
            items, AdversarialThreshold(0.5).bind(items)
        )
        result_b = make_generator(probabilities, seed=3).generate(
            items, AdversarialThreshold(0.5).bind(items)
        )
        assert result_a.paths == result_b.paths

    def test_different_seeds_differ(self):
        probabilities = np.full(40, 0.25)
        items = list(range(20))
        result_a = make_generator(probabilities, seed=1).generate(
            items, AdversarialThreshold(0.5).bind(items)
        )
        result_b = make_generator(probabilities, seed=2).generate(
            items, AdversarialThreshold(0.5).bind(items)
        )
        assert result_a.paths != result_b.paths

    def test_rare_items_terminate_paths_quickly(self):
        """Paths through rare items stop after fewer steps than paths through
        frequent items — the mechanism by which the structure exploits skew."""
        num_vectors = 1000
        probabilities = np.concatenate([np.full(20, 0.45), np.full(20, 0.001)])
        generator = make_generator(probabilities, num_vectors=num_vectors, seed=5)
        items = list(range(40))
        result = generator.generate(items, AdversarialThreshold(0.6).bind(items))
        rare_lengths = [len(p) for p in result.paths if any(item >= 20 for item in p)]
        frequent_lengths = [len(p) for p in result.paths if all(item < 20 for item in p)]
        if rare_lengths and frequent_lengths:
            assert min(rare_lengths) < min(frequent_lengths)
            assert np.mean(rare_lengths) < np.mean(frequent_lengths)

    def test_max_paths_truncation_flag(self):
        probabilities = np.full(60, 0.45)
        generator = make_generator(
            probabilities, num_vectors=10_000, seed=1, max_paths=5
        )
        items = list(range(40))
        result = generator.generate(items, AdversarialThreshold(0.9).bind(items))
        assert result.truncated
        assert len(result.paths) <= 5 + len(items)

    def test_expansions_counted(self):
        probabilities = np.full(30, 0.3)
        generator = make_generator(probabilities, num_vectors=100)
        items = list(range(15))
        result = generator.generate(items, AdversarialThreshold(0.5).bind(items))
        assert result.expansions >= 1


class TestFixedDepthMode:
    """The Chosen Path baseline mode: no product rule, collect at fixed depth."""

    def test_all_paths_have_exact_depth(self):
        probabilities = np.full(40, 0.5)
        depth = 3
        generator = PathGenerator(
            probabilities,
            PathHasher(2),
            stop_product=None,
            max_depth=depth,
            collect_at_max_depth=True,
        )
        items = list(range(20))
        result = generator.generate(items, ConstantThreshold(0.5).bind(items))
        assert result.paths, "expected at least one surviving path"
        assert all(len(path) == depth for path in result.paths)

    def test_without_collection_no_paths_survive(self):
        probabilities = np.full(40, 0.5)
        generator = PathGenerator(
            probabilities,
            PathHasher(2),
            stop_product=None,
            max_depth=3,
            collect_at_max_depth=False,
        )
        items = list(range(20))
        result = generator.generate(items, ConstantThreshold(0.5).bind(items))
        assert result.paths == []


class TestSharedPaths:
    def test_common_items_can_share_paths(self):
        """Two vectors with identical items and the same hasher get identical paths."""
        probabilities = np.full(50, 0.25)
        hasher = PathHasher(7)
        generator = PathGenerator(
            probabilities, hasher, stop_product=1.0 / 200, max_depth=12
        )
        items = list(range(0, 30, 2))
        threshold = AdversarialThreshold(0.5)
        paths_a = generator.generate(items, threshold.bind(items)).paths
        paths_b = generator.generate(items, threshold.bind(items)).paths
        assert set(paths_a) == set(paths_b)

    def test_overlapping_vectors_share_some_paths(self):
        """Highly overlapping vectors share filters with noticeable probability."""
        probabilities = np.full(80, 0.2)
        hasher = PathHasher(11)
        generator = PathGenerator(
            probabilities, hasher, stop_product=1.0 / 300, max_depth=12
        )
        threshold = AdversarialThreshold(0.5)
        shared = 0
        for trial in range(20):
            trial_generator = PathGenerator(
                probabilities,
                PathHasher(100 + trial),
                stop_product=1.0 / 300,
                max_depth=12,
            )
            items_x = list(range(0, 40))
            items_q = list(range(0, 36)) + [60, 61, 62, 63]
            paths_x = set(trial_generator.generate(items_x, threshold.bind(items_x)).paths)
            paths_q = set(trial_generator.generate(items_q, threshold.bind(items_q)).paths)
            if paths_x & paths_q:
                shared += 1
        del generator, hasher
        assert shared >= 5, f"expected frequent filter collisions, got {shared}/20"

    def test_disjoint_vectors_share_nothing(self):
        probabilities = np.full(100, 0.2)
        generator = make_generator(probabilities, num_vectors=100, seed=13)
        threshold = AdversarialThreshold(0.5)
        items_x = list(range(0, 30))
        items_q = list(range(50, 80))
        paths_x = set(generator.generate(items_x, threshold.bind(items_x)).paths)
        paths_q = set(generator.generate(items_q, threshold.bind(items_q)).paths)
        assert not (paths_x & paths_q)


class TestExpectedFilterCount:
    def test_lemma6_scaling(self):
        """E|F(x)| stays near the n^rho prediction (coarse sanity check)."""
        num_vectors = 200
        probability = 0.2
        b1 = 0.5
        probabilities = np.full(120, probability)
        items = list(range(24))  # |x| = 24 ≈ expected size
        counts = []
        for seed in range(15):
            generator = make_generator(probabilities, num_vectors=num_vectors, seed=seed)
            counts.append(
                len(generator.generate(items, AdversarialThreshold(b1).bind(items)).paths)
            )
        mean_count = float(np.mean(counts))
        rho = math.log(b1) / math.log(probability)
        prediction = num_vectors**rho
        # Allow a generous constant factor in both directions.
        assert mean_count < 40.0 * prediction
        assert mean_count > 0.01 * prediction

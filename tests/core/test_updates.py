"""Tests for dynamic insert/remove on the built indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.similarity.measures import braun_blanquet


@pytest.fixture()
def built_adversarial(skewed_distribution, skewed_dataset):
    index = SkewAdaptiveIndex(
        skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=5, seed=21)
    )
    index.build(skewed_dataset[:100])
    return index


class TestInsert:
    def test_insert_returns_new_id(self, built_adversarial, skewed_dataset):
        new_id = built_adversarial.insert(skewed_dataset[120])
        assert new_id == 100
        assert built_adversarial.get_vector(new_id) == skewed_dataset[120]

    def test_inserted_vector_is_findable(self, skewed_distribution, skewed_dataset):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=6, seed=22)
        )
        index.build(skewed_dataset[:80])
        found = 0
        for offset in range(15):
            new_vector = skewed_dataset[100 + offset]
            new_id = index.insert(new_vector)
            result, _stats = index.query(new_vector)
            if result is not None and braun_blanquet(index.get_vector(result), new_vector) >= 0.5:
                found += 1
            assert index.get_vector(new_id) == new_vector
        assert found >= 12

    def test_insert_updates_build_stats(self, built_adversarial, skewed_dataset):
        before = built_adversarial.build_stats.total_filters
        built_adversarial.insert(skewed_dataset[130])
        assert built_adversarial.build_stats.num_vectors == 101
        assert built_adversarial.build_stats.total_filters >= before

    def test_insert_empty_vector(self, built_adversarial):
        new_id = built_adversarial.insert(frozenset())
        assert built_adversarial.get_vector(new_id) == frozenset()

    def test_insert_before_build_raises(self, skewed_distribution):
        index = SkewAdaptiveIndex(skewed_distribution, b1=0.5)
        with pytest.raises(RuntimeError):
            index.insert({1, 2})

    def test_insert_on_correlated_index(self, skewed_distribution, skewed_dataset):
        index = CorrelatedIndex(
            skewed_distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=5, seed=23)
        )
        index.build(skewed_dataset[:60])
        new_id = index.insert(skewed_dataset[70])
        rng = np.random.default_rng(1)
        query = skewed_distribution.sample_correlated(skewed_dataset[70], 0.8, rng)
        result, _stats = index.query(query, mode="best")
        if result is not None:
            assert braun_blanquet(index.get_vector(result), query) >= index.acceptance_threshold
        assert index.get_vector(new_id) == skewed_dataset[70]


class TestRemove:
    def test_removed_vector_not_returned(self, skewed_distribution, skewed_dataset):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=6, seed=24)
        )
        index.build(skewed_dataset[:100])
        # Remove a vector and query with it: the removed id must never come back.
        target = 7
        index.remove(target)
        result, _stats = index.query(skewed_dataset[target], mode="best")
        assert result != target

    def test_remove_out_of_range(self, built_adversarial):
        with pytest.raises(IndexError):
            built_adversarial.remove(10_000)

    def test_remove_then_reinsert(self, built_adversarial, skewed_dataset):
        built_adversarial.remove(3)
        new_id = built_adversarial.insert(skewed_dataset[3])
        result, _stats = built_adversarial.query(skewed_dataset[3], mode="best")
        assert result == new_id

    def test_removed_excluded_from_candidates(self, built_adversarial, skewed_dataset):
        built_adversarial.remove(5)
        candidates, _stats = built_adversarial.query_candidates(skewed_dataset[5])
        assert 5 not in candidates

    def test_remove_before_build_raises(self, skewed_distribution):
        index = CorrelatedIndex(skewed_distribution, alpha=0.5)
        with pytest.raises(RuntimeError):
            index.remove(0)


class TestRemovalAudit:
    """Removed vectors must be excluded on *every* query surface — the
    single-query paths, both batched paths, the similarity join — and the
    tombstone set must survive a save/load round trip."""

    @pytest.fixture()
    def tombstoned(self, skewed_distribution, skewed_dataset):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.4, repetitions=6, seed=25)
        )
        index.build(skewed_dataset[:100])
        removed = {2, 9, 31, 57}
        for vector_id in removed:
            index.remove(vector_id)
        return index, removed

    def test_query_excludes_removed(self, tombstoned, skewed_dataset):
        index, removed = tombstoned
        for vector_id in removed:
            for mode in ("first", "best"):
                result, _stats = index.query(skewed_dataset[vector_id], mode=mode)
                assert result not in removed

    def test_query_candidates_excludes_removed(self, tombstoned, skewed_dataset):
        index, removed = tombstoned
        for query in skewed_dataset[:40]:
            candidates, _stats = index.query_candidates(query)
            assert not candidates & removed

    def test_query_batch_excludes_removed(self, tombstoned, skewed_dataset):
        index, removed = tombstoned
        for mode in ("first", "best"):
            results, _stats = index.query_batch(skewed_dataset[:60], mode=mode)
            assert removed.isdisjoint(r for r in results if r is not None)

    def test_query_candidates_batch_excludes_removed(self, tombstoned, skewed_dataset):
        index, removed = tombstoned
        candidate_sets, _stats = index.query_candidates_batch(skewed_dataset[:60])
        for candidates in candidate_sets:
            assert not candidates & removed

    def test_similarity_join_excludes_removed(self, tombstoned, skewed_dataset):
        from repro.core.join import similarity_join
        from repro.similarity.predicates import SimilarityPredicate

        index, removed = tombstoned
        result = similarity_join(
            index, skewed_dataset[:60], SimilarityPredicate("braun_blanquet", 0.4)
        )
        assert removed.isdisjoint(s_index for _r, s_index, _sim in result.pairs)

    def test_batch_matches_serial_with_tombstones(self, tombstoned, skewed_dataset):
        """The batched paths must apply tombstones identically to the serial
        ones, not just 'somehow'."""
        index, _removed = tombstoned
        queries = skewed_dataset[:40]
        serial = [index.query(q)[0] for q in queries]
        batched, _stats = index.query_batch(queries)
        assert batched == serial
        serial_sets = [index.query_candidates(q)[0] for q in queries]
        batched_sets, _stats = index.query_candidates_batch(queries)
        assert batched_sets == serial_sets

    def test_tombstones_survive_round_trip(self, tombstoned, skewed_dataset, tmp_path):
        from repro.core.serialization import load_index, save_index

        index, removed = tombstoned
        path = tmp_path / "tombstoned.bin"
        save_index(index, path)
        loaded = load_index(path)
        candidate_sets, _stats = loaded.query_candidates_batch(skewed_dataset[:60])
        for candidates in candidate_sets:
            assert not candidates & removed
        results, _stats = loaded.query_batch(skewed_dataset[:60], mode="best")
        assert removed.isdisjoint(r for r in results if r is not None)

"""Tests for the batched query subsystem.

The central contract: ``query_batch`` / ``query_candidates_batch`` return
exactly what the equivalent single-query loop returns, for every index
variant, both query modes, and every execution configuration (chunk sizes,
worker pools, deduplication on/off).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceIndex
from repro.baselines.chosen_path import ChosenPathIndex
from repro.baselines.minhash import MinHashIndex
from repro.baselines.prefix_filter import PrefixFilterIndex
from repro.core.batch import run_loop_batch
from repro.core.config import (
    DEFAULT_BATCH_SIZE,
    BatchQueryConfig,
    CorrelatedIndexConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.join import similarity_join, similarity_self_join
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.evaluation.harness import QueryWorkload, run_workload
from repro.similarity.predicates import SimilarityPredicate

NUM_VECTORS = 90


@pytest.fixture(scope="module")
def batch_dataset(skewed_distribution):
    rng = np.random.default_rng(777)
    vectors = skewed_distribution.sample_many(NUM_VECTORS, rng)
    return [vector if vector else frozenset({0}) for vector in vectors]


@pytest.fixture(scope="module")
def batch_queries(skewed_distribution, batch_dataset):
    """Mixed workload: planted, random, empty, and duplicate queries."""
    rng = np.random.default_rng(778)
    queries: list[frozenset[int]] = list(batch_dataset[:15])
    queries += [
        skewed_distribution.sample_correlated(batch_dataset[i], 0.7, rng) for i in range(10)
    ]
    dimension = skewed_distribution.dimension
    queries += [
        frozenset(rng.integers(0, dimension, size=8).tolist()) for _ in range(10)
    ]
    queries += [frozenset(), batch_dataset[0], batch_dataset[0], queries[16]]
    return queries


def _build_indexes(distribution, dataset):
    dimension = distribution.dimension
    indexes = {
        "skew_adaptive": SkewAdaptiveIndex(
            distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=3)
        ),
        "correlated": CorrelatedIndex(
            distribution, config=CorrelatedIndexConfig(alpha=0.7, repetitions=4, seed=3)
        ),
        "chosen_path": ChosenPathIndex(dimension, b1=0.5, b2=0.25, repetitions=4, seed=3),
        "minhash": MinHashIndex(threshold=0.5, seed=3),
        "prefix_filter": PrefixFilterIndex(threshold=0.5),
        "brute_force": BruteForceIndex(),
    }
    for index in indexes.values():
        index.build(dataset)
    return indexes


@pytest.fixture(scope="module")
def built_indexes(skewed_distribution, batch_dataset):
    return _build_indexes(skewed_distribution, batch_dataset)


INDEX_NAMES = [
    "skew_adaptive",
    "correlated",
    "chosen_path",
    "minhash",
    "prefix_filter",
    "brute_force",
]


class TestBatchSingleEquivalence:
    @pytest.mark.parametrize("name", INDEX_NAMES)
    @pytest.mark.parametrize("mode", ["first", "best"])
    def test_query_batch_matches_query_loop(self, built_indexes, batch_queries, name, mode):
        index = built_indexes[name]
        expected = [index.query(query, mode=mode)[0] for query in batch_queries]
        results, stats = index.query_batch(batch_queries, mode=mode)
        assert results == expected
        assert stats.num_queries == len(batch_queries)
        assert len(stats.per_query) == len(batch_queries)

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_query_candidates_batch_matches_loop(self, built_indexes, batch_queries, name):
        index = built_indexes[name]
        expected = [index.query_candidates(query)[0] for query in batch_queries]
        results, _stats = index.query_candidates_batch(batch_queries)
        assert results == expected

    @pytest.mark.parametrize("batch_size", [1, 3, 7, DEFAULT_BATCH_SIZE])
    def test_chunk_size_never_changes_results(
        self, built_indexes, batch_queries, batch_size
    ):
        index = built_indexes["skew_adaptive"]
        expected = [index.query(query)[0] for query in batch_queries]
        results, _stats = index.query_batch(batch_queries, batch_size=batch_size)
        assert results == expected

    def test_worker_pool_never_changes_results(self, built_indexes, batch_queries):
        index = built_indexes["correlated"]
        expected = [index.query(query)[0] for query in batch_queries]
        results, _stats = index.query_batch(batch_queries, batch_size=5, max_workers=4)
        assert results == expected

    def test_deduplicate_off_matches(self, built_indexes, batch_queries):
        index = built_indexes["skew_adaptive"]
        with_dedupe, _ = index.query_batch(batch_queries, deduplicate=True)
        without_dedupe, stats = index.query_batch(batch_queries, deduplicate=False)
        assert with_dedupe == without_dedupe
        assert stats.queries_deduplicated == 0

    def test_empty_batch(self, built_indexes):
        results, stats = built_indexes["skew_adaptive"].query_batch([])
        assert results == []
        assert stats.num_queries == 0

    def test_after_remove_matches(self, skewed_distribution, batch_dataset, batch_queries):
        index = SkewAdaptiveIndex(
            skewed_distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=5)
        )
        index.build(batch_dataset)
        for vector_id in (0, 3, 11):
            index.remove(vector_id)
        expected = [index.query(query)[0] for query in batch_queries]
        results, _stats = index.query_batch(batch_queries)
        assert results == expected

    def test_invalid_mode_rejected(self, built_indexes):
        with pytest.raises(ValueError):
            built_indexes["skew_adaptive"].query_batch([{1, 2}], mode="all")

    def test_invalid_batch_size_rejected(self, built_indexes):
        with pytest.raises(ValueError):
            built_indexes["skew_adaptive"].query_batch([{1, 2}], batch_size=0)

    def test_invalid_max_workers_rejected(self, built_indexes):
        with pytest.raises(ValueError):
            built_indexes["skew_adaptive"].query_batch([{1, 2}], max_workers=-1)


class TestBatchStatsAccounting:
    def test_duplicates_answered_once(self, built_indexes, batch_dataset):
        index = built_indexes["skew_adaptive"]
        queries = [batch_dataset[0]] * 6 + [batch_dataset[1]]
        results, stats = index.query_batch(queries)
        assert stats.queries_deduplicated == 5
        assert results[0] == results[1] == results[5]
        assert len(stats.per_query) == 7

    def test_probe_dedupe_counts_shared_filters(self, built_indexes, batch_dataset):
        index = built_indexes["skew_adaptive"]
        # Identical queries with deduplication disabled must share probes.
        _results, stats = index.query_batch(
            [batch_dataset[0]] * 4, deduplicate=False
        )
        first_stats = stats.per_query[0]
        if first_stats.filters_generated > 0:
            assert stats.duplicate_filter_probes > 0
            assert stats.dedupe_hit_rate > 0.0

    def test_timing_fields_populated(self, built_indexes, batch_queries):
        _results, stats = built_indexes["correlated"].query_batch(batch_queries)
        assert stats.elapsed_seconds > 0.0
        assert stats.generation_seconds >= 0.0
        assert stats.verification_seconds >= 0.0

    def test_batch_config_kwargs(self):
        config = BatchQueryConfig(
            batch_size=32, max_workers=2, deduplicate_queries=False, shard_workers=4
        )
        assert config.as_kwargs() == {
            "batch_size": 32,
            "max_workers": 2,
            "deduplicate": False,
            "shard_workers": 4,
        }
        with pytest.raises(ValueError):
            BatchQueryConfig(batch_size=0)

    def test_run_loop_batch_deduplicates(self):
        calls = []

        def query_function(query_set):
            calls.append(query_set)
            return len(query_set), QueryStats(filters_generated=1, found=True)

        results, stats = run_loop_batch(query_function, [{1, 2}, {2, 1}, {3}])
        assert results == [2, 2, 1]
        assert len(calls) == 2
        assert stats.queries_deduplicated == 1
        # The cache hit keeps the answer's outcome but reports no work of
        # its own: cloning the original counters would double-count them.
        assert stats.per_query[1].from_cache
        assert stats.per_query[1].found
        assert stats.per_query[1].filters_generated == 0
        assert stats.per_query[1].total_work == 0
        assert not stats.per_query[0].from_cache
        assert not stats.per_query[2].from_cache
        # Per-query stats are copies, not aliases.
        stats.per_query[0].filters_generated = 99
        assert stats.per_query[2].filters_generated == 1

    def test_run_loop_batch_work_not_double_counted(self):
        """Aggregating per-query work over a batch with duplicates must equal
        the work of the distinct executions."""

        def query_function(query_set):
            return len(query_set), QueryStats(filters_generated=3, candidates_examined=7)

        _results, stats = run_loop_batch(query_function, [{1}, {1}, {1}, {2}])
        assert sum(entry.total_work for entry in stats.per_query) == 2 * 10
        assert [entry.from_cache for entry in stats.per_query] == [
            False,
            True,
            True,
            False,
        ]

    def test_engine_batch_duplicates_marked_from_cache(self, built_indexes, batch_dataset):
        index = built_indexes["skew_adaptive"]
        queries = [batch_dataset[0], batch_dataset[0], batch_dataset[1]]
        _results, stats = index.query_batch(queries)
        assert not stats.per_query[0].from_cache
        assert stats.per_query[1].from_cache
        assert stats.per_query[1].total_work == 0
        assert stats.per_query[1].found == stats.per_query[0].found
        assert not stats.per_query[2].from_cache


class TestStatsSerialization:
    def test_query_stats_round_trip(self):
        stats = QueryStats(
            filters_generated=4,
            candidates_examined=17,
            unique_candidates=9,
            similarity_evaluations=9,
            found=True,
            repetitions_used=3,
        )
        payload = json.loads(json.dumps(stats.to_dict()))
        assert QueryStats.from_dict(payload) == stats

    def test_build_stats_round_trip(self):
        stats = BuildStats(
            num_vectors=10,
            total_filters=50,
            truncated_vectors=1,
            repetitions=4,
            build_seconds=0.25,
            generation_batches=2,
        )
        payload = json.loads(json.dumps(stats.to_dict()))
        assert BuildStats.from_dict(payload) == stats

    def test_batch_query_stats_round_trip(self):
        stats = BatchQueryStats(
            num_queries=2,
            per_query=[QueryStats(found=True), QueryStats(filters_generated=5)],
            distinct_filter_probes=7,
            duplicate_filter_probes=3,
            queries_deduplicated=1,
            elapsed_seconds=0.5,
            generation_seconds=0.3,
            verification_seconds=0.1,
        )
        payload = json.loads(json.dumps(stats.to_dict()))
        restored = BatchQueryStats.from_dict(payload)
        assert restored == stats
        assert restored.dedupe_hit_rate == stats.dedupe_hit_rate

    def test_from_dict_ignores_unknown_keys(self):
        payload = QueryStats(found=True).to_dict()
        payload["future_field"] = 123
        assert QueryStats.from_dict(payload).found is True

    def test_real_batch_stats_survive_round_trip(self, built_indexes, batch_queries):
        _results, stats = built_indexes["skew_adaptive"].query_batch(batch_queries)
        restored = BatchQueryStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert restored == stats


class TestBatchedJoin:
    def test_join_matches_legacy_loop(self, built_indexes, batch_dataset):
        index = built_indexes["skew_adaptive"]
        predicate = SimilarityPredicate("braun_blanquet", 0.4)
        probes = batch_dataset[:25] + [frozenset()]

        class _NoBatchView:
            """The same index without a batch surface (legacy code path)."""

            def query_candidates(self, query):
                return index.query_candidates(query)

            def get_vector(self, vector_id):
                return index.get_vector(vector_id)

        batched = similarity_join(index, probes, predicate)
        legacy = similarity_join(_NoBatchView(), probes, predicate)
        assert batched.pair_set() == legacy.pair_set()
        assert batched.num_probes == legacy.num_probes
        assert batched.candidates_examined == legacy.candidates_examined
        assert batched.similarity_evaluations == legacy.similarity_evaluations

    @pytest.mark.parametrize("batch_size", [1, 5, 64])
    def test_join_batch_size_invariant(self, built_indexes, batch_dataset, batch_size):
        index = built_indexes["correlated"]
        predicate = SimilarityPredicate("braun_blanquet", 0.4)
        reference = similarity_join(index, batch_dataset[:20], predicate)
        chunked = similarity_join(
            index, batch_dataset[:20], predicate, batch_size=batch_size
        )
        assert chunked.pair_set() == reference.pair_set()

    def test_self_join_batched(self, built_indexes, batch_dataset):
        index = built_indexes["skew_adaptive"]
        predicate = SimilarityPredicate("braun_blanquet", 0.4)
        result = similarity_self_join(index, batch_dataset, predicate, batch_size=16)
        assert all(low < high for low, high, _similarity in result.pairs)

    def test_join_rejects_bad_batch_size(self, built_indexes, batch_dataset):
        with pytest.raises(ValueError):
            similarity_join(
                built_indexes["skew_adaptive"],
                batch_dataset[:3],
                SimilarityPredicate("braun_blanquet", 0.4),
                batch_size=0,
            )


class TestHarnessBatchExecution:
    def test_batched_workload_matches_loop(
        self, skewed_distribution, batch_dataset, batch_queries
    ):
        workload = QueryWorkload(queries=list(batch_queries))

        def factory():
            return SkewAdaptiveIndex(
                skewed_distribution,
                config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=3, seed=9),
            )

        looped = run_workload(factory, batch_dataset, workload, method_name="loop")
        batched = run_workload(
            factory, batch_dataset, workload, method_name="batch", batch_size=8
        )
        assert batched.returned_ids == looped.returned_ids
        assert batched.batch_stats is not None
        assert looped.batch_stats is None
        assert "dedupe_rate" in batched.as_row()

"""Bit-exactness of the vectorised hashing kernels.

The batched query subsystem relies on ``hash_many`` / ``extend_keys`` /
``splitmix64_array`` producing *identical* values to their scalar
counterparts: a single differing bit could flip a path-sampling decision and
break batch/single-query equivalence.  These tests pin that contract,
including the overflow-prone edge keys of the Mersenne-prime arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.pairwise import (
    MERSENNE_PRIME,
    PairwiseHash,
    PathHasher,
    extend_key,
    extend_keys,
    splitmix64,
    splitmix64_array,
)

EDGE_KEYS = [
    0,
    1,
    MERSENNE_PRIME - 1,
    MERSENNE_PRIME,
    MERSENNE_PRIME + 1,
    2 * MERSENNE_PRIME,
    (1 << 63) - 1,
    1 << 63,
    (1 << 64) - 1,
]


@pytest.fixture(scope="module")
def random_keys() -> np.ndarray:
    rng = np.random.default_rng(4242)
    keys = rng.integers(0, 2**64, size=5000, dtype=np.uint64)
    keys[: len(EDGE_KEYS)] = EDGE_KEYS
    return keys


class TestVectorisedPairwiseHash:
    @pytest.mark.parametrize("seed", [0, 1, 17, 123456])
    def test_hash_many_matches_hash_int(self, random_keys, seed):
        hash_function = PairwiseHash(seed)
        vectorised = hash_function.hash_many(random_keys)
        scalar = np.array([hash_function.hash_int(int(key)) for key in random_keys])
        assert np.array_equal(vectorised, scalar)

    def test_hash_many_in_unit_interval(self, random_keys):
        values = PairwiseHash(9).hash_many(random_keys)
        assert float(values.min()) >= 0.0
        assert float(values.max()) < 1.0

    def test_empty_input(self):
        assert PairwiseHash(0).hash_many(np.empty(0, dtype=np.uint64)).size == 0


class TestVectorisedSplitmix:
    def test_matches_scalar(self, random_keys):
        vectorised = splitmix64_array(random_keys)
        scalar = np.array([splitmix64(int(key)) for key in random_keys], dtype=np.uint64)
        assert np.array_equal(vectorised, scalar)


class TestVectorisedExtendKeys:
    def test_matches_scalar(self, random_keys):
        rng = np.random.default_rng(11)
        items = rng.integers(0, 10**6, size=random_keys.size)
        vectorised = extend_keys(random_keys, items)
        scalar = np.array(
            [extend_key(int(key), int(item)) for key, item in zip(random_keys, items)],
            dtype=np.uint64,
        )
        assert np.array_equal(vectorised, scalar)


class TestFlatExtensionValues:
    def test_flat_matches_per_path(self):
        hasher = PathHasher(5)
        paths = [(), (3,), (3, 9), (1, 2, 7)]
        items = [4, 5, 6]
        for level in range(3):
            flat_prefixes = np.array(
                [hasher.path_key(path) for path in paths for _item in items],
                dtype=np.uint64,
            )
            flat_items = np.array([item for _path in paths for item in items])
            flat = hasher.extension_values_flat(flat_prefixes, flat_items, level)
            reference = np.concatenate(
                [hasher.extension_values(path, items, level) for path in paths]
            )
            assert np.array_equal(flat, reference)

    def test_pairs_flat_returns_reusable_keys(self):
        hasher = PathHasher(5)
        prefixes = np.array([hasher.path_key(()), hasher.path_key((2,))], dtype=np.uint64)
        items = np.array([7, 8])
        keys, values = hasher.extension_pairs_flat(prefixes, items, 0)
        assert int(keys[0]) == hasher.path_key((7,))
        assert int(keys[1]) == hasher.path_key((2, 8))
        assert np.array_equal(values, hasher.extension_values_flat(prefixes, items, 0))

    def test_ensure_levels_idempotent(self):
        hasher = PathHasher(5)
        hasher.ensure_levels(6)
        before = hasher.extension_value((1,), 2, 5)
        hasher.ensure_levels(6)
        assert hasher.extension_value((1,), 2, 5) == before

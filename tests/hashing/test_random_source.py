"""Tests for seed derivation and the RandomSource wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.random_source import RandomSource, derive_seed, split_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_different_labels_differ(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_different_base_seeds_differ(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_range_is_63_bits(self):
        for index in range(50):
            seed = derive_seed(123, index)
            assert 0 <= seed < 2**63

    def test_stable_across_runs(self):
        # Regression guard: the derivation is SHA-256 based, so the concrete
        # value must never change between library versions.
        assert derive_seed(0) == derive_seed(0)
        assert derive_seed(0, "x") != derive_seed(0)


class TestSplitSeed:
    def test_count(self):
        assert len(split_seed(5, 10)) == 10

    def test_unique(self):
        seeds = split_seed(5, 100)
        assert len(set(seeds)) == 100

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_seed(5, -1)

    def test_label_separates_streams(self):
        assert split_seed(5, 3, label="a") != split_seed(5, 3, label="b")


class TestRandomSource:
    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RandomSource(-1)

    def test_same_seed_same_stream(self):
        a = RandomSource(9).generator.random(5)
        b = RandomSource(9).generator.random(5)
        assert np.allclose(a, b)

    def test_child_independent_of_parent_consumption(self):
        parent_a = RandomSource(11)
        parent_a.generator.random(100)  # consume some values
        child_a = parent_a.child("x").generator.random(3)
        child_b = RandomSource(11).child("x").generator.random(3)
        assert np.allclose(child_a, child_b)

    def test_child_seeds_are_distinct(self):
        seeds = RandomSource(3).child_seeds(20)
        assert len(set(seeds)) == 20

    def test_fresh_generator_deterministic(self):
        a = RandomSource(2).fresh_generator("lbl").random(4)
        b = RandomSource(2).fresh_generator("lbl").random(4)
        assert np.allclose(a, b)

    def test_integers_in_range(self):
        values = RandomSource(4).integers(0, 10, size=100)
        assert np.all(values >= 0) and np.all(values < 10)

    def test_uniform_in_unit_interval(self):
        values = RandomSource(4).uniform(size=100)
        assert np.all(values >= 0.0) and np.all(values < 1.0)

    def test_stream_yields_distinct(self):
        stream = RandomSource(6).stream()
        first = [next(stream) for _ in range(10)]
        assert len(set(first)) == 10

    def test_repr_contains_seed(self):
        assert "17" in repr(RandomSource(17))

"""Tests for pairwise-independent hashing and the path hasher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.pairwise import (
    MERSENNE_PRIME,
    PairwiseHash,
    PairwiseHashFamily,
    PathHasher,
    extend_key,
    fold_path,
    splitmix64,
)


class TestSplitMix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_range(self):
        for value in [0, 1, 2**32, 2**63, 2**64 - 1]:
            assert 0 <= splitmix64(value) < 2**64

    def test_bijective_on_sample(self):
        values = [splitmix64(v) for v in range(2000)]
        assert len(set(values)) == 2000


class TestFoldPath:
    def test_empty_path_constant(self):
        assert fold_path(()) == fold_path([])

    def test_order_sensitive(self):
        assert fold_path((1, 2)) != fold_path((2, 1))

    def test_extend_key_matches_fold(self):
        path = (3, 7, 11)
        assert extend_key(fold_path(path), 5) == fold_path(path + (5,))

    def test_distinct_paths_distinct_keys(self):
        keys = {fold_path((a, b)) for a in range(30) for b in range(30) if a != b}
        assert len(keys) == 30 * 29

    def test_fold_paths_csr_bit_identical(self):
        import numpy as np

        from repro.hashing.pairwise import fold_paths_csr

        paths = [(), (3,), (1, 2), (2, 1), (5, 9, 14), (0, 0)]
        items = np.asarray([item for path in paths for item in path], dtype=np.int64)
        offsets = np.zeros(len(paths) + 1, dtype=np.int64)
        np.cumsum([len(path) for path in paths], out=offsets[1:])
        keys = fold_paths_csr(items, offsets)
        assert keys.dtype == np.uint64
        assert keys.tolist() == [fold_path(path) for path in paths]

    def test_fold_paths_csr_empty(self):
        import numpy as np

        from repro.hashing.pairwise import fold_paths_csr

        keys = fold_paths_csr(np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64))
        assert keys.size == 0


class TestPairwiseHash:
    def test_unit_interval(self):
        hash_function = PairwiseHash(0)
        for key in range(100):
            assert 0.0 <= hash_function.hash_int(key) < 1.0

    def test_deterministic_per_seed(self):
        assert PairwiseHash(5).hash_int(99) == PairwiseHash(5).hash_int(99)

    def test_different_seeds_differ(self):
        values_a = [PairwiseHash(1).hash_int(key) for key in range(20)]
        values_b = [PairwiseHash(2).hash_int(key) for key in range(20)]
        assert values_a != values_b

    def test_coefficients_in_field(self):
        a, b = PairwiseHash(3).coefficients
        assert 1 <= a < MERSENNE_PRIME
        assert 0 <= b < MERSENNE_PRIME

    def test_hash_many_matches_scalar(self):
        hash_function = PairwiseHash(7)
        keys = np.arange(50, dtype=np.int64)
        vector = hash_function.hash_many(keys)
        scalar = [hash_function.hash_int(int(key)) for key in keys]
        assert np.allclose(vector, scalar)

    def test_roughly_uniform(self):
        hash_function = PairwiseHash(11)
        values = [hash_function.hash_int(splitmix64(key)) for key in range(4000)]
        mean = float(np.mean(values))
        assert 0.45 < mean < 0.55


class TestPairwiseHashFamily:
    def test_levels_lazily_created(self):
        family = PairwiseHashFamily(0)
        assert len(family) == 0
        family.level(4)
        assert len(family) == 5

    def test_same_level_same_function(self):
        family = PairwiseHashFamily(0)
        assert family.level(2) is family.level(2)

    def test_levels_differ(self):
        family = PairwiseHashFamily(0)
        assert family.level(0).hash_int(1) != family.level(1).hash_int(1)

    def test_negative_level_rejected(self):
        with pytest.raises(IndexError):
            PairwiseHashFamily(0).level(-1)


class TestPathHasher:
    def test_same_extension_same_value(self):
        """Two vectors extending the same path with the same item see the same hash."""
        hasher = PathHasher(3)
        assert hasher.extension_value((1, 2), 7, level=2) == hasher.extension_value(
            (1, 2), 7, level=2
        )

    def test_extension_values_match_scalar(self):
        hasher = PathHasher(3)
        items = [4, 9, 17]
        vector = hasher.extension_values((1, 2), items, level=1)
        scalar = [hasher.extension_value((1, 2), item, level=1) for item in items]
        assert np.allclose(vector, scalar)

    def test_extension_values_from_key_consistent(self):
        hasher = PathHasher(3)
        prefix = (5, 6)
        via_key = hasher.extension_values_from_key(fold_path(prefix), [1, 2, 3], level=0)
        direct = hasher.extension_values(prefix, [1, 2, 3], level=0)
        assert np.allclose(via_key, direct)

    def test_level_changes_value(self):
        hasher = PathHasher(3)
        assert hasher.extension_value((1,), 2, level=0) != hasher.extension_value(
            (1,), 2, level=1
        )

    def test_different_seeds_give_different_hashers(self):
        assert PathHasher(1).extension_value((), 5, 0) != PathHasher(2).extension_value(
            (), 5, 0
        )

    def test_path_key_is_fold(self):
        hasher = PathHasher(0)
        assert hasher.path_key((1, 2, 3)) == fold_path((1, 2, 3))

"""Tests for minwise hashing (MinHash signatures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.minwise import MinwiseHasher, minhash_signature
from repro.hashing.tabulation import TabulationHash
from repro.similarity.measures import jaccard


class TestMinhashSignature:
    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            minhash_signature([], [TabulationHash(0)])

    def test_signature_length(self):
        hashers = [TabulationHash(index) for index in range(5)]
        assert minhash_signature([1, 2, 3], hashers).shape == (5,)

    def test_signature_is_minimum(self):
        hashers = [TabulationHash(3)]
        items = [10, 20, 30]
        expected = min(hashers[0].hash_int(item) for item in items)
        assert int(minhash_signature(items, hashers)[0]) == expected

    def test_order_invariant(self):
        hashers = [TabulationHash(index) for index in range(4)]
        assert np.array_equal(
            minhash_signature([3, 1, 2], hashers), minhash_signature([1, 2, 3], hashers)
        )


class TestMinwiseHasher:
    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinwiseHasher(0, seed=1)

    def test_deterministic(self):
        a = MinwiseHasher(8, seed=2).signature([1, 5, 9])
        b = MinwiseHasher(8, seed=2).signature([1, 5, 9])
        assert np.array_equal(a, b)

    def test_identical_sets_identical_signatures(self):
        hasher = MinwiseHasher(16, seed=0)
        assert np.array_equal(hasher.signature([2, 4, 6]), hasher.signature([6, 4, 2]))

    def test_signatures_stacking(self):
        hasher = MinwiseHasher(4, seed=0)
        stacked = hasher.signatures([[1, 2], [3, 4], [5, 6]])
        assert stacked.shape == (3, 4)

    def test_signatures_empty_collection(self):
        hasher = MinwiseHasher(4, seed=0)
        assert hasher.signatures([]).shape == (0, 4)

    def test_estimate_jaccard_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            MinwiseHasher.estimate_jaccard(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))

    def test_estimate_jaccard_identical(self):
        hasher = MinwiseHasher(32, seed=1)
        signature = hasher.signature([1, 2, 3, 4])
        assert MinwiseHasher.estimate_jaccard(signature, signature) == 1.0

    def test_estimate_jaccard_tracks_true_jaccard(self):
        """The MinHash estimate should be close to the true Jaccard similarity."""
        hasher = MinwiseHasher(300, seed=5)
        set_a = frozenset(range(0, 60))
        set_b = frozenset(range(30, 90))
        estimate = MinwiseHasher.estimate_jaccard(
            hasher.signature(sorted(set_a)), hasher.signature(sorted(set_b))
        )
        truth = jaccard(set_a, set_b)
        assert abs(estimate - truth) < 0.12

    def test_disjoint_sets_low_estimate(self):
        hasher = MinwiseHasher(200, seed=6)
        estimate = MinwiseHasher.estimate_jaccard(
            hasher.signature(list(range(50))), hasher.signature(list(range(1000, 1050)))
        )
        assert estimate < 0.1

"""Tests for tabulation hashing."""

from __future__ import annotations

import numpy as np

from repro.hashing.tabulation import TabulationHash


class TestTabulationHash:
    def test_deterministic(self):
        hasher = TabulationHash(0)
        assert hasher.hash_int(123) == hasher.hash_int(123)

    def test_seed_changes_function(self):
        values_a = [TabulationHash(1).hash_int(key) for key in range(10)]
        values_b = [TabulationHash(2).hash_int(key) for key in range(10)]
        assert values_a != values_b

    def test_range_64_bits(self):
        hasher = TabulationHash(0)
        for key in [0, 1, 255, 256, 2**31, 2**32 - 1]:
            assert 0 <= hasher.hash_int(key) < 2**64

    def test_keys_reduced_mod_2_32(self):
        hasher = TabulationHash(0)
        assert hasher.hash_int(5) == hasher.hash_int(5 + 2**32)

    def test_unit_interval(self):
        hasher = TabulationHash(3)
        values = [hasher.hash_unit(key) for key in range(200)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.4 < float(np.mean(values)) < 0.6

    def test_hash_array_matches_scalar(self):
        hasher = TabulationHash(5)
        keys = np.arange(100, dtype=np.uint64)
        array_values = hasher.hash_array(keys)
        scalar_values = np.asarray([hasher.hash_int(int(key)) for key in keys], dtype=np.uint64)
        assert np.array_equal(array_values, scalar_values)

    def test_hash_array_unit_matches(self):
        hasher = TabulationHash(5)
        keys = np.arange(50, dtype=np.uint64)
        assert np.allclose(
            hasher.hash_array_unit(keys),
            hasher.hash_array(keys).astype(np.float64) / float(2**64),
        )

    def test_few_collisions_on_small_universe(self):
        hasher = TabulationHash(9)
        values = hasher.hash_array(np.arange(5000, dtype=np.uint64))
        assert len(np.unique(values)) == 5000

    def test_callable(self):
        hasher = TabulationHash(1)
        assert hasher(77) == hasher.hash_int(77)
